// Package obs is the zero-dependency observability layer shared by the
// compression pipeline, the distributed coordinator/workers, the flowzipd
// daemon and the seekable read path.
//
// It provides three independent signal families:
//
//   - Metrics: a Registry of counters, gauges and bucketed histograms
//     rendered in Prometheus text exposition format (0.0.4). Instruments
//     are nil-receiver safe: a nil *Counter, *Gauge or *Histogram turns
//     every mutation into a single nil check, so instrumented hot paths
//     cost nothing when observability is off.
//
//   - Tracing: a Tracer of timed spans serialized as Chrome trace-event
//     JSON, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//     A nil *Tracer yields zero-value Spans whose methods are no-ops.
//
//   - Runtime introspection: runtime/metrics sampling (goroutines, heap,
//     GC) into the registry, and an HTTP server exposing /metrics,
//     net/http/pprof and /debug/vars.
//
// Naming convention for metrics: <subsystem>_<noun>[_<unit>][_total],
// e.g. flowzipd_sessions_started_total, pipeline_batch_seconds.
package obs
