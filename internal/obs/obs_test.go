package obs

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestObsDisabledZeroAlloc pins the cost of disabled observability: every
// instrument reached through a nil registry or nil tracer must be a branch,
// never an allocation, so hot paths can stay instrumented unconditionally.
func TestObsDisabledZeroAlloc(t *testing.T) {
	var reg *Registry // disabled: nil registry hands out nil instruments
	c := reg.Counter("x_total", "")
	g := reg.Gauge("x", "")
	h := reg.Histogram("x_seconds", "", DefaultLatencyBuckets)
	v := reg.CounterVec("x_by_y_total", "", "y")
	if c != nil || g != nil || h != nil || v != nil {
		t.Fatal("nil registry must return nil instruments")
	}
	var tr *Tracer

	cases := map[string]func(){
		"counter.Add":   func() { c.Add(1) },
		"counter.Inc":   func() { c.Inc() },
		"gauge.Set":     func() { g.Set(42) },
		"gauge.Max":     func() { g.Max(42) },
		"hist.Observe":  func() { h.Observe(0.01) },
		"vec.Add":       func() { v.Add("tenant", 1) },
		"span":          func() { tr.Span(0, "work").ArgInt("n", 1).ArgStr("k", "v").End() },
		"instant":       func() { tr.Instant(0, "mark") },
		"registry.Fn":   func() { reg.CounterFunc("f_total", "", func() float64 { return 0 }) },
		"tracer.Thread": func() { tr.NameThread(0, "t") },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op when disabled, want 0", name, allocs)
		}
	}
}

// TestRegistryConcurrent hammers one registry from 8 writers (the pipeline
// worker count) while a reader renders, for the race detector.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "help")
	g := reg.Gauge("g", "help")
	h := reg.Histogram("h_seconds", "help", DefaultLatencyBuckets)
	v := reg.CounterVec("v_total", "help", "worker")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				g.Max(int64(i))
				h.Observe(float64(i) / 1000)
				v.Add("w", 1)
			}
		}(w)
	}
	for i := 0; i < 10; i++ {
		if err := reg.Render(&bytes.Buffer{}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := h.Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
	if got := v.Load("w"); got != 8000 {
		t.Errorf("vec = %d, want 8000", got)
	}
}

// TestRegistryRender pins the exposition format: HELP/TYPE headers,
// registration order, label escaping, cumulative histogram buckets.
func TestRegistryRender(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "A counter.").Add(3)
	reg.Gauge("b", "A gauge.").Set(-2)
	v := reg.CounterVec("c_total", "A family.", "tenant")
	v.Add("lab-b", 7)
	v.Add(`evil"quote\slash`+"\nline", 1)
	h := reg.Histogram("d_seconds", "A histogram.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(99)

	var b bytes.Buffer
	if err := reg.Render(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_total A counter.
# TYPE a_total counter
a_total 3
# HELP b A gauge.
# TYPE b gauge
b -2
# HELP c_total A family.
# TYPE c_total counter
c_total{tenant="evil\"quote\\slash\nline"} 1
c_total{tenant="lab-b"} 7
# HELP d_seconds A histogram.
# TYPE d_seconds histogram
d_seconds_bucket{le="0.1"} 1
d_seconds_bucket{le="1"} 2
d_seconds_bucket{le="+Inf"} 3
d_seconds_sum 99.55
d_seconds_count 3
`
	if got := b.String(); got != want {
		t.Errorf("render mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRegistryIdempotent: re-registering the same name+kind returns the
// same instrument; a kind clash panics.
func TestRegistryIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "help")
	b := reg.Counter("x_total", "other help")
	if a != b {
		t.Error("same name+kind must return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind clash did not panic")
		}
	}()
	reg.Gauge("x_total", "help")
}

// TestTracerJSON checks the trace is well-formed Chrome trace-event JSON
// and that span ordering lets a viewer nest children under parents: on
// one tid, an enclosing span must precede the spans it contains.
func TestTracerJSON(t *testing.T) {
	tr := NewTracer("test process")
	tr.NameThread(0, "pipeline")
	outer := tr.Span(0, "outer").ArgStr("mode", "test")
	inner := tr.Span(0, "inner").ArgInt("n", 7)
	inner.End()
	tr.Instant(1, "mark")
	outer.End()

	var b bytes.Buffer
	if err := tr.Write(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int64          `json:"tid"`
			Ts   int64          `json:"ts"`
			Dur  *int64         `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 5 { // process_name, thread_name, outer, inner, mark
		t.Fatalf("got %d events, want 5", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Name != "process_name" || doc.TraceEvents[0].Ph != "M" {
		t.Errorf("first event %+v, want process_name metadata", doc.TraceEvents[0])
	}
	var outerIdx, innerIdx = -1, -1
	for i, ev := range doc.TraceEvents {
		switch ev.Name {
		case "outer":
			outerIdx = i
		case "inner":
			innerIdx = i
		}
		if ev.Ph == "X" && ev.Dur == nil {
			t.Errorf("complete event %q missing dur", ev.Name)
		}
	}
	if outerIdx < 0 || innerIdx < 0 || outerIdx > innerIdx {
		t.Fatalf("outer (idx %d) must precede inner (idx %d)", outerIdx, innerIdx)
	}
	o, in := doc.TraceEvents[outerIdx], doc.TraceEvents[innerIdx]
	if in.Ts < o.Ts || in.Ts+*in.Dur > o.Ts+*o.Dur {
		t.Errorf("inner [%d,%d] not contained in outer [%d,%d]",
			in.Ts, in.Ts+*in.Dur, o.Ts, o.Ts+*o.Dur)
	}
	if o.Args["mode"] != "test" || in.Args["n"] != float64(7) {
		t.Errorf("span args lost: outer=%v inner=%v", o.Args, in.Args)
	}
}

// TestRuntimeMetrics: the runtime sampler registers and renders live
// values (goroutines is always >= 1).
func TestRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	var b bytes.Buffer
	if err := reg.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"go_goroutines", "go_heap_objects_bytes", "go_gc_cycles_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime metrics missing %s:\n%s", want, out)
		}
	}
	var gor float64
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "go_goroutines "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			gor = v
		}
	}
	if gor < 1 {
		t.Errorf("go_goroutines = %v, want >= 1", gor)
	}
}
