package obs

import (
	"context"
	"log/slog"
	"os"
)

// nopHandler drops every record. (slog.DiscardHandler needs Go 1.24;
// this module still targets 1.23.)
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// NopLogger returns a logger that discards everything.
func NopLogger() *slog.Logger {
	return slog.New(nopHandler{})
}

// NewLogger returns a text logger on stderr with the given component
// attached to every record, e.g. component=flowzipd.
func NewLogger(component string) *slog.Logger {
	return slog.New(slog.NewTextHandler(os.Stderr, nil)).With("component", component)
}

// logfHandler bridges slog records onto a printf-style sink, preserving
// the legacy Logf hooks (tests and embedders inject these).
type logfHandler struct {
	logf  func(string, ...any)
	attrs []slog.Attr
}

func (h logfHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h logfHandler) Handle(_ context.Context, rec slog.Record) error {
	line := rec.Message
	emit := func(a slog.Attr) {
		line += " " + a.Key + "=" + a.Value.String()
	}
	for _, a := range h.attrs {
		emit(a)
	}
	rec.Attrs(func(a slog.Attr) bool {
		emit(a)
		return true
	})
	h.logf("%s", line)
	return nil
}

func (h logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	na := make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	na = append(na, h.attrs...)
	na = append(na, attrs...)
	return logfHandler{logf: h.logf, attrs: na}
}

func (h logfHandler) WithGroup(string) slog.Handler { return h }

// LogfLogger wraps a printf-style function as a structured logger.
// A nil logf yields a NopLogger.
func LogfLogger(logf func(string, ...any)) *slog.Logger {
	if logf == nil {
		return NopLogger()
	}
	return slog.New(logfHandler{logf: logf})
}
