package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. All methods are
// safe on a nil receiver: a nil Counter costs one branch per call and
// performs no allocation, so hot paths can be instrumented unconditionally.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Load returns the current value (0 for a nil Counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer metric that can go up and down.
// Safe on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Load returns the current value (0 for a nil Gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max raises the gauge to n if n is larger than the current value.
func (g *Gauge) Max(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Histogram is a fixed-bucket histogram of float64 observations.
// Buckets are cumulative at render time, matching Prometheus semantics.
// Safe on a nil receiver.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// DefaultLatencyBuckets spans 100µs to 10s, suitable for batch, segment
// and shard latencies across the pipeline.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 for a nil Histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 for a nil Histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// CounterVec is a family of counters keyed by a single label value,
// e.g. per-tenant byte counts. Safe on a nil receiver.
type CounterVec struct {
	label    string
	mu       sync.Mutex
	children map[string]*Counter
}

// Label returns the counter for the given label value, creating it on
// first use. Returns nil on a nil receiver.
func (v *CounterVec) Label(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	c, ok := v.children[value]
	if !ok {
		c = &Counter{}
		v.children[value] = c
	}
	v.mu.Unlock()
	return c
}

// Add increments the counter for the given label value by n.
func (v *CounterVec) Add(value string, n int64) {
	v.Label(value).Add(n)
}

// Load returns the value for the given label (0 if absent or nil receiver).
func (v *CounterVec) Load(value string) int64 {
	if v == nil {
		return 0
	}
	v.mu.Lock()
	c := v.children[value]
	v.mu.Unlock()
	return c.Load()
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterVec
	kindGaugeFunc
	kindCounterFunc
)

func (k metricKind) typeName() string {
	switch k {
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

type metric struct {
	name string
	help string
	kind metricKind

	c   *Counter
	g   *Gauge
	h   *Histogram
	vec *CounterVec
	fn  func() float64
}

// Registry holds a set of named instruments and renders them in
// Prometheus text exposition format (0.0.4). Series are rendered in
// registration order so output is deterministic and existing scrapers
// keep seeing series in the order they always have. All constructors are
// safe on a nil receiver and return nil instruments, so a single
// "registry == nil when disabled" decision propagates to every call site.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

func (r *Registry) register(name, help string, kind metricKind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic("obs: metric " + name + " re-registered with a different type")
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	return m
}

// Counter registers (or returns the existing) counter with the given name.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	m := r.register(name, help, kindCounter)
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge registers (or returns the existing) gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.register(name, help, kindGauge)
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// Histogram registers (or returns the existing) histogram with the given
// bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	m := r.register(name, help, kindHistogram)
	if m.h == nil {
		m.h = newHistogram(bounds)
	}
	return m.h
}

// CounterVec registers (or returns the existing) counter family keyed by
// the given label name.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	m := r.register(name, help, kindCounterVec)
	if m.vec == nil {
		m.vec = &CounterVec{label: label, children: make(map[string]*Counter)}
	}
	return m.vec
}

// GaugeFunc registers a gauge whose value is sampled at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	m := r.register(name, help, kindGaugeFunc)
	m.fn = fn
}

// CounterFunc registers a counter whose value is sampled at render time.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	m := r.register(name, help, kindCounterFunc)
	m.fn = fn
}

// EscapeLabel escapes a label value per the Prometheus exposition format:
// backslash, double quote and newline are escaped; everything else passes
// through verbatim.
func EscapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Render writes every registered series in Prometheus text format, in
// registration order. It is safe to call concurrently with metric updates.
func (r *Registry) Render(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, m := range metrics {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.kind.typeName())
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s %d\n", m.name, m.c.Load())
		case kindGauge:
			fmt.Fprintf(bw, "%s %d\n", m.name, m.g.Load())
		case kindGaugeFunc, kindCounterFunc:
			fmt.Fprintf(bw, "%s %s\n", m.name, formatFloat(m.fn()))
		case kindCounterVec:
			m.vec.mu.Lock()
			values := make([]string, 0, len(m.vec.children))
			for v := range m.vec.children {
				values = append(values, v)
			}
			sort.Strings(values)
			for _, v := range values {
				fmt.Fprintf(bw, "%s{%s=\"%s\"} %d\n", m.name, m.vec.label, EscapeLabel(v), m.vec.children[v].Load())
			}
			m.vec.mu.Unlock()
		case kindHistogram:
			h := m.h
			var cum int64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(bw, "%s_bucket{le=\"%s\"} %d\n", m.name, formatFloat(bound), cum)
			}
			cum += h.counts[len(h.bounds)].Load()
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
			fmt.Fprintf(bw, "%s_sum %s\n", m.name, formatFloat(h.Sum()))
			fmt.Fprintf(bw, "%s_count %d\n", m.name, cum)
		}
	}
	return bw.Flush()
}
