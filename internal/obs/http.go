package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving the registry in Prometheus
// text exposition format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Render(w)
	})
}

// Serve binds addr and serves /metrics until the returned stop function
// is called. With debug set it additionally mounts net/http/pprof under
// /debug/pprof/ and expvar under /debug/vars. It returns the bound
// address, useful when addr requests an ephemeral port.
func Serve(addr string, r *Registry, debug bool) (net.Addr, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: metrics listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	if debug {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/vars", expvar.Handler())
	}
	srv := &http.Server{Handler: mux}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	stop := func() {
		srv.Close()
		<-done
	}
	return ln.Addr(), stop, nil
}
