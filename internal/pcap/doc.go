// Package pcap implements the classic libpcap capture file format
// (little-endian, microsecond resolution, LINKTYPE_RAW) for interchange with
// standard tooling. Packets are written as bare IPv4 datagrams — header-only
// records, like the traces the paper works with: the captured length is the
// 40 header bytes while the original length includes the payload.
//
// Three access granularities are provided:
//
//   - Reader / Writer decode and encode one record at a time over any
//     io.Reader / io.Writer — the building blocks.
//   - Source wraps a Reader into batch-oriented, bounded-memory reads: Next
//     returns up to one batch of packets and reuses its buffer, so a
//     multi-gigabyte capture streams through core.CompressStream without
//     ever being resident. Open opens a capture file directly as a Source.
//   - ReadAll / WriteAll are the whole-file conveniences used by package
//     trace for in-memory loads.
//
// A Source that hits a decode error mid-batch first returns the packets
// already decoded, then surfaces the error on the following Next call, so
// no successfully decoded packet is lost to a truncated tail.
package pcap
