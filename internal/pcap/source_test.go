package pcap

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"flowzip/internal/pkt"
)

func sourcePackets(n int) []pkt.Packet {
	out := make([]pkt.Packet, n)
	for i := range out {
		out[i] = pkt.Packet{
			Timestamp: time.Duration(i) * time.Millisecond,
			SrcIP:     pkt.Addr(10, 0, 0, 1),
			DstIP:     pkt.Addr(192, 168, 0, byte(i%250+1)),
			SrcPort:   30000 + uint16(i),
			DstPort:   80,
			Proto:     pkt.ProtoTCP,
			Flags:     pkt.FlagACK,
			TTL:       64,
		}
	}
	return out
}

func TestSourceBatches(t *testing.T) {
	want := sourcePackets(10)
	var buf bytes.Buffer
	if err := WriteAll(&buf, want); err != nil {
		t.Fatal(err)
	}

	s := NewSource(bytes.NewReader(buf.Bytes()), 4)
	var got []pkt.Packet
	sizes := []int{}
	for {
		batch, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(batch))
		got = append(got, batch...)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d packets, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("packet %d differs", i)
		}
	}
	// 10 packets at batch 4 → 4, 4, 2: chunked reads, not whole-file.
	if len(sizes) != 3 || sizes[0] != 4 || sizes[2] != 2 {
		t.Fatalf("batch sizes %v, want [4 4 2]", sizes)
	}
	if s.Count() != 10 {
		t.Fatalf("Count %d, want 10", s.Count())
	}
	if _, err := s.Next(); err != io.EOF {
		t.Fatal("EOF not sticky")
	}
}

// TestSourceMidBatchError checks no decoded packet is lost when the stream
// dies mid-batch: the good packets come out first, the error on the call
// after.
func TestSourceMidBatchError(t *testing.T) {
	want := sourcePackets(6)
	var buf bytes.Buffer
	if err := WriteAll(&buf, want); err != nil {
		t.Fatal(err)
	}
	// Truncate inside the last record.
	trunc := buf.Bytes()[:buf.Len()-7]

	s := NewSource(bytes.NewReader(trunc), 64)
	batch, err := s.Next()
	if err != nil {
		t.Fatalf("first Next: %v", err)
	}
	if len(batch) != 5 {
		t.Fatalf("first batch %d packets, want the 5 intact ones", len(batch))
	}
	if _, err := s.Next(); err == nil || err == io.EOF {
		t.Fatalf("second Next: %v, want decode error", err)
	}
	if _, err := s.Next(); err != io.EOF {
		t.Fatal("source not terminal after error")
	}
}

func TestOpenAndClose(t *testing.T) {
	want := sourcePackets(5)
	path := filepath.Join(t.TempDir(), "x.pcap")
	var buf bytes.Buffer
	if err := WriteAll(&buf, want); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		batch, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		total += len(batch)
	}
	if total != len(want) {
		t.Fatalf("decoded %d packets, want %d", total, len(want))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(filepath.Join(t.TempDir(), "missing.pcap"), 2); err == nil {
		t.Fatal("Open on a missing file succeeded")
	}
}
