package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"flowzip/internal/pkt"
)

const (
	// MagicMicroseconds is the standard little-endian pcap magic.
	MagicMicroseconds = 0xa1b2c3d4
	// LinkTypeRaw means packets start directly at the IP header.
	LinkTypeRaw = 101
	// GlobalHeaderLen and RecordHeaderLen are the fixed framing sizes.
	GlobalHeaderLen = 24
	RecordHeaderLen = 16
	// DefaultSnapLen mirrors a header-only capture.
	DefaultSnapLen = pkt.HeaderBytes
)

// ErrBadMagic reports a stream that is not a little-endian microsecond pcap.
var ErrBadMagic = errors.New("pcap: bad magic")

// Writer emits a pcap stream.
type Writer struct {
	w           io.Writer
	wroteHeader bool
	n           int64
}

// NewWriter returns a Writer; the global header is emitted lazily on the
// first packet (or by Flush on an empty capture).
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

func (w *Writer) writeGlobalHeader() error {
	var h [GlobalHeaderLen]byte
	binary.LittleEndian.PutUint32(h[0:4], MagicMicroseconds)
	binary.LittleEndian.PutUint16(h[4:6], 2) // version major
	binary.LittleEndian.PutUint16(h[6:8], 4) // version minor
	binary.LittleEndian.PutUint32(h[8:12], 0)
	binary.LittleEndian.PutUint32(h[12:16], 0)
	binary.LittleEndian.PutUint32(h[16:20], DefaultSnapLen)
	binary.LittleEndian.PutUint32(h[20:24], LinkTypeRaw)
	if _, err := w.w.Write(h[:]); err != nil {
		return fmt.Errorf("pcap: write global header: %w", err)
	}
	w.wroteHeader = true
	return nil
}

// Flush ensures the global header exists even for empty captures.
func (w *Writer) Flush() error {
	if !w.wroteHeader {
		return w.writeGlobalHeader()
	}
	return nil
}

// WritePacket appends one record.
func (w *Writer) WritePacket(p *pkt.Packet) error {
	if !w.wroteHeader {
		if err := w.writeGlobalHeader(); err != nil {
			return err
		}
	}
	var rec [RecordHeaderLen + pkt.HeaderBytes]byte
	sec := uint32(p.Timestamp / time.Second)
	usec := uint32((p.Timestamp % time.Second) / time.Microsecond)
	binary.LittleEndian.PutUint32(rec[0:4], sec)
	binary.LittleEndian.PutUint32(rec[4:8], usec)
	binary.LittleEndian.PutUint32(rec[8:12], pkt.HeaderBytes)
	binary.LittleEndian.PutUint32(rec[12:16], uint32(p.TotalLen()))
	if _, err := p.MarshalHeaders(rec[RecordHeaderLen:]); err != nil {
		return err
	}
	if _, err := w.w.Write(rec[:]); err != nil {
		return fmt.Errorf("pcap: write record: %w", err)
	}
	w.n++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int64 { return w.n }

// Reader parses a pcap stream produced by this package (or any raw-IP,
// little-endian microsecond pcap whose captured slices start at an IPv4
// header).
type Reader struct {
	r       io.Reader
	started bool
	buf     []byte
	n       int64
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r, buf: make([]byte, 65536)} }

func (r *Reader) readGlobalHeader() error {
	var h [GlobalHeaderLen]byte
	if _, err := io.ReadFull(r.r, h[:]); err != nil {
		return fmt.Errorf("pcap: read global header: %w", err)
	}
	if binary.LittleEndian.Uint32(h[0:4]) != MagicMicroseconds {
		return ErrBadMagic
	}
	if lt := binary.LittleEndian.Uint32(h[20:24]); lt != LinkTypeRaw {
		return fmt.Errorf("pcap: unsupported link type %d (want %d)", lt, LinkTypeRaw)
	}
	r.started = true
	return nil
}

// ReadPacket decodes the next record, returning io.EOF at end of stream.
func (r *Reader) ReadPacket(p *pkt.Packet) error {
	if !r.started {
		if err := r.readGlobalHeader(); err != nil {
			return err
		}
	}
	var rh [RecordHeaderLen]byte
	n, err := io.ReadFull(r.r, rh[:])
	if err == io.EOF && n == 0 {
		return io.EOF
	}
	if err != nil {
		return fmt.Errorf("pcap: truncated record header: %w", err)
	}
	sec := binary.LittleEndian.Uint32(rh[0:4])
	usec := binary.LittleEndian.Uint32(rh[4:8])
	incl := binary.LittleEndian.Uint32(rh[8:12])
	orig := binary.LittleEndian.Uint32(rh[12:16])
	if incl > uint32(len(r.buf)) {
		return fmt.Errorf("pcap: record too large: %d bytes", incl)
	}
	if _, err := io.ReadFull(r.r, r.buf[:incl]); err != nil {
		return fmt.Errorf("pcap: truncated record body: %w", err)
	}
	p.Timestamp = time.Duration(sec)*time.Second + time.Duration(usec)*time.Microsecond
	if err := p.UnmarshalHeaders(r.buf[:incl]); err != nil {
		return fmt.Errorf("pcap: record %d: %w", r.n, err)
	}
	// Header traces carry payload length via the original (wire) length.
	if orig >= pkt.HeaderBytes {
		p.PayloadLen = uint16(orig - pkt.HeaderBytes)
	}
	r.n++
	return nil
}

// Count returns the number of records read so far.
func (r *Reader) Count() int64 { return r.n }

// WriteAll writes a whole packet slice as a capture file.
func WriteAll(w io.Writer, packets []pkt.Packet) error {
	pw := NewWriter(w)
	if err := pw.Flush(); err != nil {
		return err
	}
	for i := range packets {
		if err := pw.WritePacket(&packets[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadAll decodes every record.
func ReadAll(r io.Reader) ([]pkt.Packet, error) {
	pr := NewReader(r)
	var out []pkt.Packet
	for {
		var p pkt.Packet
		err := pr.ReadPacket(&p)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}

// Size returns the pcap file size in bytes for n header-only packets.
func Size(n int) int64 {
	return GlobalHeaderLen + int64(n)*(RecordHeaderLen+pkt.HeaderBytes)
}
