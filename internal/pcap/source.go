package pcap

import (
	"fmt"
	"io"
	"os"

	"flowzip/internal/pkt"
)

// DefaultBatch is the packets-per-Next batch size Source uses when given a
// non-positive one; the value is shared by every streaming source.
const DefaultBatch = pkt.DefaultBatch

// Source reads a pcap stream in bounded batches — the PacketSource
// implementation for capture files. Memory stays at one batch of packets
// regardless of capture size, which is what lets the streaming compressor
// work through multi-gigabyte files. The batching semantics (buffer reuse,
// deferred mid-batch errors, sticky EOF) are pkt.BatchReader's.
type Source struct {
	*pkt.BatchReader
	c io.Closer // closed by Close when the source owns the file
}

// NewSource returns a Source decoding up to batch packets per Next call
// (DefaultBatch when batch <= 0).
func NewSource(r io.Reader, batch int) *Source {
	if batch <= 0 {
		batch = DefaultBatch
	}
	return &Source{BatchReader: pkt.NewBatchReader(NewReader(r), batch)}
}

// Open opens a capture file for streaming reads. Close releases the file.
func Open(path string, batch int) (*Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pcap: %w", err)
	}
	s := NewSource(f, batch)
	s.c = f
	return s, nil
}

// Close releases the underlying file when the source was built with Open;
// it is a no-op for NewSource over a caller-owned reader.
func (s *Source) Close() error {
	if s.c == nil {
		return nil
	}
	return s.c.Close()
}
