package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"flowzip/internal/pkt"
)

func mkPacket(i int) pkt.Packet {
	return pkt.Packet{
		Timestamp:  time.Duration(i) * time.Millisecond,
		SrcIP:      pkt.Addr(10, 0, 0, byte(i)),
		DstIP:      pkt.Addr(192, 168, 1, 80),
		SrcPort:    uint16(2000 + i),
		DstPort:    80,
		Proto:      pkt.ProtoTCP,
		Flags:      pkt.FlagACK | pkt.FlagPSH,
		Seq:        uint32(i),
		Ack:        uint32(i + 1),
		Window:     4096,
		TTL:        64,
		IPID:       uint16(i),
		PayloadLen: uint16(100 * i % 1400),
	}
}

func TestRoundTrip(t *testing.T) {
	var packets []pkt.Packet
	for i := 0; i < 50; i++ {
		packets = append(packets, mkPacket(i))
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, packets); err != nil {
		t.Fatal(err)
	}
	if got, want := int64(buf.Len()), Size(50); got != want {
		t.Fatalf("size = %d, want %d", got, want)
	}
	back, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(packets) {
		t.Fatalf("decoded %d, want %d", len(back), len(packets))
	}
	for i := range packets {
		if back[i] != packets[i] {
			t.Fatalf("packet %d mismatch:\n got %+v\nwant %+v", i, back[i], packets[i])
		}
	}
}

func TestEmptyCaptureHasHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != GlobalHeaderLen {
		t.Fatalf("empty capture = %d bytes, want %d", buf.Len(), GlobalHeaderLen)
	}
	out, err := ReadAll(&buf)
	if err != nil || len(out) != 0 {
		t.Fatalf("reading empty capture: out=%v err=%v", out, err)
	}
}

func TestGlobalHeaderFields(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, nil); err != nil {
		t.Fatal(err)
	}
	h := buf.Bytes()
	if binary.LittleEndian.Uint32(h[0:4]) != MagicMicroseconds {
		t.Fatal("bad magic")
	}
	if binary.LittleEndian.Uint16(h[4:6]) != 2 || binary.LittleEndian.Uint16(h[6:8]) != 4 {
		t.Fatal("bad version")
	}
	if binary.LittleEndian.Uint32(h[20:24]) != LinkTypeRaw {
		t.Fatal("bad link type")
	}
}

func TestBadMagic(t *testing.T) {
	junk := make([]byte, GlobalHeaderLen)
	_, err := ReadAll(bytes.NewReader(junk))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestUnsupportedLinkType(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, nil); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	binary.LittleEndian.PutUint32(b[20:24], 1) // ethernet
	if _, err := ReadAll(bytes.NewReader(b)); err == nil {
		t.Fatal("expected link-type error")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	p := mkPacket(1)
	if err := WriteAll(&buf, []pkt.Packet{p}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadAll(bytes.NewReader(b[:len(b)-10])); err == nil {
		t.Fatal("expected truncation error")
	}
	if _, err := ReadAll(bytes.NewReader(b[:GlobalHeaderLen+4])); err == nil {
		t.Fatal("expected truncated record header error")
	}
}

func TestPayloadLenFromOrigLen(t *testing.T) {
	p := mkPacket(3)
	p.PayloadLen = 1234
	var buf bytes.Buffer
	if err := WriteAll(&buf, []pkt.Packet{p}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].PayloadLen != 1234 {
		t.Fatalf("payload = %d, want 1234", back[0].PayloadLen)
	}
}
