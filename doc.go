// Package flowzip is a lossy packet-trace compressor based on TCP flow
// clustering, reproducing Holanda, Verdú, García and Valero, "Performance
// Analysis of a New Packet Trace Compressor based on TCP Flow Clustering"
// (ISPASS 2005).
//
// The compressor reduces TCP/IP header traces to a few percent of their
// original size by exploiting the similarity of Web flows: each flow maps
// to a small integer vector (TCP flag class, acknowledgment dependence and
// payload-size class per packet, weighted 16/4/1), similar vectors share a
// cluster template, and the compressed file stores four datasets —
// short-flow templates, long-flow templates, unique destination addresses
// and a per-flow time-seq index. Decompression regenerates a synthetic
// trace preserving the statistical properties that matter for
// memory-system studies of network code.
//
// # Quick start
//
//	tr := flowzip.GenerateWeb(flowzip.DefaultWebConfig())
//	archive, err := flowzip.Compress(tr, flowzip.DefaultOptions())
//	// ... persist with archive.Encode, inspect archive.Ratio() ...
//	back, err := flowzip.Decompress(archive)
//
// # Parallel compression
//
// For multi-million-packet traces, CompressParallel shards the pipeline
// across CPU cores. Packets are partitioned by 5-tuple hash so every flow is
// assembled by exactly one shard, each shard runs an independent flow table
// and template store, and a deterministic merge re-clusters the shard
// results into one archive. The output is byte-for-byte identical to the
// serial Compress — same datasets, same template numbering, same Ratio —
// so the two are interchangeable:
//
//	archive, err := flowzip.CompressParallel(tr, flowzip.DefaultOptions(), 0)
//	// workers <= 0 means one shard per CPU; workers == 1 is the serial path
//
// On template-heavy traffic the shards keep rediscovering the same
// short-flow vectors. CompressParallelConfig (and
// StreamConfig.SharedTemplates) attaches one lock-free global template
// snapshot to all workers — per-shard state shrinks to overflow-only
// vectors and the merge re-clusters far less, while the archive bytes stay
// identical; ParallelStats reports the saved work:
//
//	var stats flowzip.ParallelStats
//	archive, err := flowzip.CompressParallelConfig(tr, flowzip.DefaultOptions(),
//		flowzip.ParallelConfig{SharedTemplates: true, Stats: &stats})
//
// # Streaming compression
//
// Captures larger than memory compress through the PacketSource seam:
// CompressStream pulls batches from a source, partitions them by the same
// 5-tuple hash and feeds the shard workers through bounded channels with
// backpressure, so resident packets stay bounded by a window rather than
// the capture size. The archive is still byte-identical to serial Compress
// over the same packets:
//
//	src, err := flowzip.OpenPcap("capture.pcap")
//	defer src.Close()
//	archive, err := flowzip.CompressStream(src, flowzip.DefaultOptions(), 0)
//
// TraceSource streams an in-memory trace, OpenPcap a capture file, and
// StreamWeb the synthetic Web generator (in bounded memory, identical to
// GenerateWeb). CompressStreamConfig adds the residency window and progress
// reporting.
//
// # Distributed compression
//
// The same 5-tuple partitioning scales past one machine: CompressShard
// compresses a single partition of a stream into a serializable
// ShardResult, EncodeShardState/DecodeShardState move it as a versioned
// .fzshard blob, and MergeShards (or MergeShardFiles) replays the
// deterministic merge over a complete set — still byte-identical to serial
// Compress. NewCoordinator and DialCoordinator run the split over TCP:
// workers register, receive partition assignments, compress from their own
// PacketSource and push shard state back, with dead workers' shards
// re-queued automatically. CompressDistributed wires both ends together
// over loopback:
//
//	src := func() (flowzip.PacketSource, error) { return flowzip.OpenPcap("capture.pcap") }
//	archive, err := flowzip.CompressDistributed(src, flowzip.DefaultOptions(), 8, 4)
//
// # The unified Pipeline
//
// Every Compress* variant above is a thin wrapper over one entry point:
// New(opts, cfg) validates codec options and pipeline knobs once and returns
// a Pipeline whose Compress method streams any PacketSource and whose
// CompressTrace method runs the in-memory sharded path — both byte-identical
// to serial Compress. New is strict where the legacy wrappers clamp:
//
//	p, err := flowzip.New(flowzip.DefaultOptions(), flowzip.Config{Workers: 4})
//	archive, err := p.Compress(flowzip.TraceSource(tr, 0))
//
// # The ingestion daemon
//
// flowzipd (NewDaemon, cmd/flowzipd) turns the streaming pipeline into a
// long-lived service: many concurrent capture clients stream packet batches
// over framed TCP, each session runs its own bounded pipeline, and archives
// land under one directory per tenant, rotated on size/age boundaries with a
// JSON sidecar (SegmentMeta) per segment. Backpressure reaches the capture
// point through the ack stream, quotas bound tenants, graceful shutdown
// drains in-flight sessions, and counters are served in Prometheus text
// format. Every segment is still byte-identical to a serial Compress over
// its packet range:
//
//	d, err := flowzip.NewDaemon(flowzip.DaemonConfig{ListenAddr: ":9100", Dir: "archives"})
//	sum, err := flowzip.Ingest(addr, "tenant-a", src, flowzip.DefaultOptions(), flowzip.NetConfig{})
//	err = d.Shutdown(ctx) // drain: finalize sessions, flush archives
//
// The subsystems behind the facade live in internal/ (see ARCHITECTURE.md
// for the map); the cmd/ binaries and examples/ directory show complete
// pipelines, including the paper's figure reproductions.
package flowzip
