// Command figures regenerates every table and figure of the paper's
// evaluation from the synthetic substrate, printing aligned tables, ASCII
// plots and optional CSV.
//
// Usage:
//
//	figures -fig all                 # everything, CI scale
//	figures -fig 1 -scale paper      # Figure 1 at paper scale
//	figures -fig 2 -kernel NAT       # memory study under the NAT kernel
//	figures -fig ratio -csv          # CSV output for plotting
//
// Figure ids: 1, 2, 3, ratio, analytic, flowlen, clusters, weights,
// threshold, cache, storage, all.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"flowzip/internal/figures"
	"flowzip/internal/netbench"
	"flowzip/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")

	var (
		fig    = flag.String("fig", "all", "figure/table id (1,2,3,ratio,analytic,flowlen,clusters,weights,threshold,cache,storage,all)")
		scale  = flag.String("scale", "default", "experiment scale: default or paper")
		kernel = flag.String("kernel", "Route", "memory-study kernel: Route, NAT or RTR")
		seed   = flag.Uint64("seed", 1, "random seed")
		flows  = flag.Int("flows", 0, "override flow count (0 = scale default)")
		csv    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		ascii  = flag.Bool("ascii", true, "draw ASCII plots for figures")
	)
	flag.Parse()

	cfg := figures.DefaultConfig()
	switch *scale {
	case "default":
	case "paper":
		cfg = figures.PaperScaleConfig()
	default:
		log.Fatalf("unknown scale %q (want default or paper)", *scale)
	}
	if *flows < 0 {
		log.Fatalf("-flows %d must be >= 0", *flows)
	}
	cfg.Seed = *seed
	if *flows > 0 {
		cfg.Flows = *flows
	}
	switch *kernel {
	case "Route":
		cfg.Kernel = netbench.KindRoute
	case "NAT":
		cfg.Kernel = netbench.KindNAT
	case "RTR":
		cfg.Kernel = netbench.KindRTR
	default:
		log.Fatalf("unknown kernel %q", *kernel)
	}

	out := os.Stdout
	emitTable := func(t *stats.Table) {
		if *csv {
			t.CSV(out)
		} else {
			t.Render(out)
		}
		fmt.Fprintln(out)
	}
	emitFigure := func(f *stats.Figure) {
		if *ascii && !*csv {
			f.RenderASCII(out, 72, 18)
			fmt.Fprintln(out)
		}
		emitTable(f.Table())
	}

	var memStudy *figures.MemStudy
	needMem := func() *figures.MemStudy {
		if memStudy == nil {
			s, err := figures.RunMemStudy(cfg)
			if err != nil {
				log.Fatal(err)
			}
			memStudy = s
		}
		return memStudy
	}

	run := func(id string) {
		switch id {
		case "1":
			f, err := figures.Fig1(cfg)
			if err != nil {
				log.Fatal(err)
			}
			emitFigure(f)
		case "2":
			emitFigure(needMem().Fig2())
			emitTable(needMem().AccessSummaryTable())
		case "3":
			emitTable(needMem().Fig3())
		case "ratio":
			t, err := figures.RatioTable(cfg)
			if err != nil {
				log.Fatal(err)
			}
			emitTable(t)
		case "analytic":
			t, err := figures.AnalyticTable(cfg)
			if err != nil {
				log.Fatal(err)
			}
			emitTable(t)
		case "flowlen":
			t, err := figures.FlowLengthTable(cfg)
			if err != nil {
				log.Fatal(err)
			}
			emitTable(t)
		case "clusters":
			f, t, err := figures.ClusterStudy(cfg)
			if err != nil {
				log.Fatal(err)
			}
			emitFigure(f)
			emitTable(t)
		case "weights":
			t, err := figures.WeightAblation(cfg)
			if err != nil {
				log.Fatal(err)
			}
			emitTable(t)
		case "threshold":
			t, err := figures.ThresholdAblation(cfg)
			if err != nil {
				log.Fatal(err)
			}
			emitTable(t)
		case "cache":
			t, err := figures.CacheAblation(cfg)
			if err != nil {
				log.Fatal(err)
			}
			emitTable(t)
		case "storage":
			t, err := figures.StorageBreakdownTable(cfg)
			if err != nil {
				log.Fatal(err)
			}
			emitTable(t)
		case "p2p":
			t, err := figures.P2PTable(cfg)
			if err != nil {
				log.Fatal(err)
			}
			emitTable(t)
			t, err = figures.P2PDiversity(cfg)
			if err != nil {
				log.Fatal(err)
			}
			emitTable(t)
		default:
			log.Fatalf("unknown figure id %q", id)
		}
	}

	if *fig == "all" {
		for _, id := range []string{"flowlen", "clusters", "ratio", "analytic", "storage", "1", "2", "3", "weights", "threshold", "cache", "p2p"} {
			run(id)
		}
		return
	}
	run(*fig)
}
