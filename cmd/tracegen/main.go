// Command tracegen generates synthetic header traces: the Web-traffic model
// that stands in for the paper's RedIRIS/NLANR captures, the
// random-destination variant, and the fractal (multiplicative process + LRU
// stack) trace of Section 6.
//
// Usage:
//
//	tracegen -kind web -flows 20000 -duration 60s -o web.tsh
//	tracegen -kind random -base web.tsh -o random.tsh
//	tracegen -kind fractal -packets 100000 -o frac.pcap
//
// The output format follows the file extension (.tsh or .pcap).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"flowzip/internal/flowgen"
	"flowzip/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	var (
		kind     = flag.String("kind", "web", "trace kind: web, random, fractal")
		out      = flag.String("o", "trace.tsh", "output path (.tsh or .pcap)")
		seed     = flag.Uint64("seed", 1, "random seed")
		flows    = flag.Int("flows", 20000, "web: number of flows")
		duration = flag.Duration("duration", 60*time.Second, "web: trace duration")
		servers  = flag.Int("servers", 500, "web: server pool size")
		base     = flag.String("base", "", "random: base trace to re-address")
		packets  = flag.Int("packets", 100000, "fractal: packet count")
		quiet    = flag.Bool("q", false, "suppress the stats line")
	)
	flag.Parse()

	var (
		tr  *trace.Trace
		err error
	)
	switch *kind {
	case "web":
		switch {
		case *flows < 1:
			log.Fatalf("-flows %d must be >= 1", *flows)
		case *duration <= 0:
			log.Fatalf("-duration %v must be positive", *duration)
		case *servers < 1:
			log.Fatalf("-servers %d must be >= 1", *servers)
		}
		cfg := flowgen.DefaultWebConfig()
		cfg.Seed = *seed
		cfg.Flows = *flows
		cfg.Duration = *duration
		cfg.Servers = *servers
		tr = flowgen.Web(cfg)
	case "random":
		if *base == "" {
			log.Fatal("-kind random requires -base")
		}
		var bt *trace.Trace
		bt, err = trace.LoadFile(*base)
		if err != nil {
			log.Fatal(err)
		}
		tr = flowgen.RandomizeAddresses(bt, *seed)
	case "fractal":
		if *packets < 1 {
			log.Fatalf("-packets %d must be >= 1", *packets)
		}
		cfg := flowgen.DefaultFractalConfig()
		cfg.Seed = *seed
		cfg.Packets = *packets
		tr = flowgen.Fractal(cfg)
	default:
		log.Fatalf("unknown kind %q (want web, random or fractal)", *kind)
	}

	if err := tr.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stdout, "%s: %s\n", *out, tr.ComputeStats())
	}
}
