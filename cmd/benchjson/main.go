// Command benchjson converts `go test -bench` text output into a JSON
// document, so CI can publish benchmark numbers (e.g. the distributed
// pipeline's shards/sec) as machine-readable artifacts that a perf
// trajectory can be plotted from.
//
// Usage:
//
//	go test -bench . ./internal/dist | benchjson -o BENCH_dist.json
//	benchjson -i bench.txt -o bench.json
//
// Standard benchmark lines parse into {name, iterations, metrics}; the
// goos/goarch/pkg/cpu preamble becomes the environment block. Unrecognized
// lines are ignored, so piping a whole `go test` run in is fine.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the document benchjson emits.
type Report struct {
	Environment map[string]string `json:"environment,omitempty"`
	Benchmarks  []Benchmark       `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	in := flag.String("i", "", "input file (default stdin)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	report, err := parse(r)
	if err != nil {
		log.Fatal(err)
	}
	if len(report.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found in input")
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		log.Fatal(err)
	}
}

// parse scans bench output. A benchmark line is
//
//	BenchmarkName[-P]  <iterations>  (<value> <unit>)+
//
// and the preamble lines are "key: value" pairs (goos, goarch, pkg, cpu).
func parse(r io.Reader) (*Report, error) {
	report := &Report{Environment: map[string]string{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				report.Benchmarks = append(report.Benchmarks, b)
			}
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			report.Environment[key] = strings.TrimSpace(val)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading input: %w", err)
	}
	return report, nil
}

func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	// Name, iterations and at least one value/unit pair.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       stripProcsSuffix(fields[0]),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// stripProcsSuffix removes the trailing -GOMAXPROCS that `go test` appends
// (BenchmarkX-8 -> BenchmarkX). Only a final all-digit segment is cut, so
// dashes inside benchmark or sub-benchmark names survive intact.
func stripProcsSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
