// Command benchjson converts `go test -bench` text output into a JSON
// document, so CI can publish benchmark numbers (e.g. the distributed
// pipeline's shards/sec) as machine-readable artifacts that a perf
// trajectory can be plotted from.
//
// Usage:
//
//	go test -bench . ./internal/dist | benchjson -o BENCH_dist.json
//	benchjson -i bench.txt -o bench.json
//	benchjson -prom -i http://localhost:9101/metrics -o daemon.json
//
// Standard benchmark lines parse into {name, iterations, metrics}; the
// goos/goarch/pkg/cpu preamble becomes the environment block. Unrecognized
// lines are ignored, so piping a whole `go test` run in is fine.
//
// With -prom the input is Prometheus text exposition instead — the format
// flowzipd serves on /metrics — and each sample becomes {name, labels,
// value} in the report's "samples" array, so the daemon's session and
// rotation counters publish through the same JSON artifact pipeline as the
// benchmark numbers. An -i starting with http:// or https:// is fetched.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the document benchjson emits.
type Report struct {
	Environment map[string]string `json:"environment,omitempty"`
	Benchmarks  []Benchmark       `json:"benchmarks,omitempty"`
	Samples     []Sample          `json:"samples,omitempty"`
}

// Sample is one parsed Prometheus sample line (-prom mode).
type Sample struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	in := flag.String("i", "", "input file or, with -prom, a http(s):// metrics URL (default stdin)")
	out := flag.String("o", "", "output file (default stdout)")
	prom := flag.Bool("prom", false, "parse Prometheus text exposition (flowzipd /metrics) instead of bench output")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		if *prom && (strings.HasPrefix(*in, "http://") || strings.HasPrefix(*in, "https://")) {
			resp, err := http.Get(*in)
			if err != nil {
				log.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				log.Fatalf("%s: %s", *in, resp.Status)
			}
			r = resp.Body
		} else {
			f, err := os.Open(*in)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			r = f
		}
	}
	var report *Report
	var err error
	if *prom {
		report, err = parseProm(r)
	} else {
		report, err = parse(r)
	}
	if err != nil {
		log.Fatal(err)
	}
	if !*prom && len(report.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found in input")
	}
	if *prom && len(report.Samples) == 0 {
		log.Fatal("no Prometheus samples found in input")
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		log.Fatal(err)
	}
}

// parse scans bench output. A benchmark line is
//
//	BenchmarkName[-P]  <iterations>  (<value> <unit>)+
//
// and the preamble lines are "key: value" pairs (goos, goarch, pkg, cpu).
func parse(r io.Reader) (*Report, error) {
	report := &Report{Environment: map[string]string{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				report.Benchmarks = append(report.Benchmarks, b)
			}
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			report.Environment[key] = strings.TrimSpace(val)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading input: %w", err)
	}
	return report, nil
}

func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	// Name, iterations and at least one value/unit pair.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       stripProcsSuffix(fields[0]),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// parseProm scans Prometheus text exposition (version 0.0.4, the format
// flowzipd's /metrics serves): comment and blank lines are skipped, every
// other line is `name[{label="value",...}] value`. Lines that do not parse
// are an error — unlike bench output, a metrics page has no legitimate
// unrecognized lines.
func parseProm(r io.Reader) (*Report, error) {
	report := &Report{}
	sc := bufio.NewScanner(r)
	for n := 1; sc.Scan(); n++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("metrics line %d: %w", n, err)
		}
		report.Samples = append(report.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading input: %w", err)
	}
	return report, nil
}

func parsePromLine(line string) (Sample, error) {
	name := line
	rest := ""
	var labels map[string]string
	if open := strings.IndexByte(line, '{'); open >= 0 {
		close := strings.LastIndexByte(line, '}')
		if close < open {
			return Sample{}, fmt.Errorf("unbalanced label braces in %q", line)
		}
		name = line[:open]
		rest = line[close+1:]
		var err error
		if labels, err = parsePromLabels(line[open+1 : close]); err != nil {
			return Sample{}, err
		}
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return Sample{}, fmt.Errorf("want `name value`, got %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return Sample{}, fmt.Errorf("sample value in %q: %w", line, err)
	}
	return Sample{Name: name, Labels: labels, Value: v}, nil
}

// parsePromLabels parses `k1="v1",k2="v2"`. Escapes inside label values are
// limited to what the daemon emits (\\, \", \n), matching the exposition
// format's quoting rules.
func parsePromLabels(s string) (map[string]string, error) {
	labels := map[string]string{}
	for s = strings.TrimSpace(s); s != ""; {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || len(s) < eq+2 || s[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		var val strings.Builder
		i := eq + 2
		for {
			if i >= len(s) {
				return nil, fmt.Errorf("unterminated label value in %q", s)
			}
			c := s[i]
			if c == '"' {
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("dangling escape in %q", s)
				}
				i++
				switch s[i] {
				case 'n':
					c = '\n'
				default:
					c = s[i]
				}
			}
			val.WriteByte(c)
			i++
		}
		labels[key] = val.String()
		s = strings.TrimSpace(s[i+1:])
		s = strings.TrimPrefix(s, ",")
		s = strings.TrimSpace(s)
	}
	return labels, nil
}

// stripProcsSuffix removes the trailing -GOMAXPROCS that `go test` appends
// (BenchmarkX-8 -> BenchmarkX). Only a final all-digit segment is cut, so
// dashes inside benchmark or sub-benchmark names survive intact.
func stripProcsSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
