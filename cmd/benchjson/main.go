// Command benchjson converts `go test -bench` text output into a JSON
// document, so CI can publish benchmark numbers (e.g. the distributed
// pipeline's shards/sec) as machine-readable artifacts that a perf
// trajectory can be plotted from.
//
// Usage:
//
//	go test -bench . ./internal/dist | benchjson -o BENCH_dist.json
//	benchjson -i bench.txt -o bench.json
//	benchjson -prom -i http://localhost:9101/metrics -o daemon.json
//
// Standard benchmark lines parse into {name, iterations, metrics}; the
// goos/goarch/pkg/cpu preamble becomes the environment block. Unrecognized
// lines are ignored, so piping a whole `go test` run in is fine.
//
// With -prom the input is Prometheus text exposition instead — the format
// flowzipd serves on /metrics — and each sample becomes {name, labels,
// value} in the report's "samples" array, so the daemon's session and
// rotation counters publish through the same JSON artifact pipeline as the
// benchmark numbers. Histogram families (the daemon's batch and segment
// latencies) are folded into the "histograms" array: cumulative buckets in
// exposition order plus the _sum and _count samples. -strict additionally
// lints the page — every family needs # HELP and # TYPE, histogram buckets
// must be cumulative and end at +Inf — so CI can validate a live scrape.
// An -i starting with http:// or https:// is fetched.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"

	"flowzip/internal/promtext"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the document benchjson emits. Samples and Histograms are the
// -prom mode payload (internal/promtext does the parsing).
type Report struct {
	Environment map[string]string     `json:"environment,omitempty"`
	Benchmarks  []Benchmark           `json:"benchmarks,omitempty"`
	Samples     []promtext.Sample     `json:"samples,omitempty"`
	Histograms  []*promtext.Histogram `json:"histograms,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	in := flag.String("i", "", "input file or, with -prom, a http(s):// metrics URL (default stdin)")
	out := flag.String("o", "", "output file (default stdout)")
	prom := flag.Bool("prom", false, "parse Prometheus text exposition (flowzipd /metrics) instead of bench output")
	strict := flag.Bool("strict", false, "with -prom: lint the exposition (HELP/TYPE headers, well-formed histograms) and fail on violations")
	flag.Parse()
	if *strict && !*prom {
		log.Fatal("-strict requires -prom")
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		if *prom && (strings.HasPrefix(*in, "http://") || strings.HasPrefix(*in, "https://")) {
			resp, err := http.Get(*in)
			if err != nil {
				log.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				log.Fatalf("%s: %s", *in, resp.Status)
			}
			r = resp.Body
		} else {
			f, err := os.Open(*in)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			r = f
		}
	}
	var report *Report
	var err error
	if *prom {
		report, err = parsePromStrict(r, *strict)
	} else {
		report, err = parse(r)
	}
	if err != nil {
		log.Fatal(err)
	}
	if !*prom && len(report.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found in input")
	}
	if *prom && len(report.Samples) == 0 && len(report.Histograms) == 0 {
		log.Fatal("no Prometheus samples found in input")
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		log.Fatal(err)
	}
}

// parse scans bench output. A benchmark line is
//
//	BenchmarkName[-P]  <iterations>  (<value> <unit>)+
//
// and the preamble lines are "key: value" pairs (goos, goarch, pkg, cpu).
func parse(r io.Reader) (*Report, error) {
	report := &Report{Environment: map[string]string{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				report.Benchmarks = append(report.Benchmarks, b)
			}
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			report.Environment[key] = strings.TrimSpace(val)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading input: %w", err)
	}
	return report, nil
}

func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	// Name, iterations and at least one value/unit pair.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       stripProcsSuffix(fields[0]),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// parseProm scans Prometheus text exposition (version 0.0.4, the format
// flowzipd's /metrics serves) via internal/promtext: counter and gauge
// lines become samples, TYPE-histogram families fold into histograms.
// Lines that do not parse are an error — unlike bench output, a metrics
// page has no legitimate unrecognized lines.
func parseProm(r io.Reader) (*Report, error) {
	return parsePromStrict(r, false)
}

func parsePromStrict(r io.Reader, strict bool) (*Report, error) {
	res, err := promtext.Parse(r, strict)
	if err != nil {
		return nil, err
	}
	return &Report{Samples: res.Samples, Histograms: res.Histograms}, nil
}

// parsePromLine parses a single sample line (test seam over the shared
// parser).
func parsePromLine(line string) (promtext.Sample, error) {
	res, err := promtext.Parse(strings.NewReader(line), false)
	if err != nil {
		return promtext.Sample{}, err
	}
	if len(res.Samples) != 1 {
		return promtext.Sample{}, fmt.Errorf("want one sample in %q", line)
	}
	return res.Samples[0], nil
}

// stripProcsSuffix removes the trailing -GOMAXPROCS that `go test` appends
// (BenchmarkX-8 -> BenchmarkX). Only a final all-digit segment is cut, so
// dashes inside benchmark or sub-benchmark names survive intact.
func stripProcsSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
