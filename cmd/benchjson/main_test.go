package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	const out = `goos: linux
goarch: amd64
pkg: flowzip/internal/dist
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDistributedLoopback-8 	       3	   8055134 ns/op	    444584 packets/sec	       496.6 shards/sec
BenchmarkMergeShardResults 	       2	    669334 ns/op
PASS
ok  	flowzip/internal/dist	0.031s
`
	report, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if report.Environment["goos"] != "linux" || report.Environment["cpu"] == "" {
		t.Errorf("environment not captured: %v", report.Environment)
	}
	if len(report.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(report.Benchmarks))
	}
	b := report.Benchmarks[0]
	if b.Name != "BenchmarkDistributedLoopback" {
		t.Errorf("name %q, want GOMAXPROCS suffix stripped", b.Name)
	}
	if b.Iterations != 3 {
		t.Errorf("iterations %d, want 3", b.Iterations)
	}
	if b.Metrics["shards/sec"] != 496.6 || b.Metrics["ns/op"] != 8055134 {
		t.Errorf("metrics not parsed: %v", b.Metrics)
	}
	if report.Benchmarks[1].Name != "BenchmarkMergeShardResults" {
		t.Errorf("suffix-free name mangled: %q", report.Benchmarks[1].Name)
	}
}

// TestStripProcsSuffix pins the name transform: only a trailing all-digit
// segment is the GOMAXPROCS suffix; dashes inside benchmark and
// sub-benchmark names must survive.
func TestStripProcsSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-8":                 "BenchmarkX",
		"BenchmarkX":                   "BenchmarkX",
		"BenchmarkX/4-shards-8":        "BenchmarkX/4-shards",
		"BenchmarkX/4-shards":          "BenchmarkX/4-shards",
		"BenchmarkRace-to-the-top-16":  "BenchmarkRace-to-the-top",
		"BenchmarkTrailingDash-":       "BenchmarkTrailingDash-",
		"BenchmarkDistributedLoopback": "BenchmarkDistributedLoopback",
	}
	for in, want := range cases {
		if got := stripProcsSuffix(in); got != want {
			t.Errorf("stripProcsSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
