package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	const out = `goos: linux
goarch: amd64
pkg: flowzip/internal/dist
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDistributedLoopback-8 	       3	   8055134 ns/op	    444584 packets/sec	       496.6 shards/sec
BenchmarkMergeShardResults 	       2	    669334 ns/op
PASS
ok  	flowzip/internal/dist	0.031s
`
	report, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if report.Environment["goos"] != "linux" || report.Environment["cpu"] == "" {
		t.Errorf("environment not captured: %v", report.Environment)
	}
	if len(report.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(report.Benchmarks))
	}
	b := report.Benchmarks[0]
	if b.Name != "BenchmarkDistributedLoopback" {
		t.Errorf("name %q, want GOMAXPROCS suffix stripped", b.Name)
	}
	if b.Iterations != 3 {
		t.Errorf("iterations %d, want 3", b.Iterations)
	}
	if b.Metrics["shards/sec"] != 496.6 || b.Metrics["ns/op"] != 8055134 {
		t.Errorf("metrics not parsed: %v", b.Metrics)
	}
	if report.Benchmarks[1].Name != "BenchmarkMergeShardResults" {
		t.Errorf("suffix-free name mangled: %q", report.Benchmarks[1].Name)
	}
}

// TestParsePromOutput parses exactly what flowzipd's /metrics serves:
// HELP/TYPE comments, bare counters and labeled per-tenant series.
func TestParsePromOutput(t *testing.T) {
	const out = `# HELP flowzipd_sessions_active Sessions currently open.
# TYPE flowzipd_sessions_active gauge
flowzipd_sessions_active 3
# HELP flowzipd_packets_total Packets accepted across all sessions.
# TYPE flowzipd_packets_total counter
flowzipd_packets_total 1.048576e+06
# TYPE flowzipd_tenant_archive_bytes_total counter
flowzipd_tenant_archive_bytes_total{tenant="lab-a"} 8192
flowzipd_tenant_archive_bytes_total{tenant="lab-b",region="eu"} 512
`
	report, err := parseProm(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Samples) != 4 {
		t.Fatalf("parsed %d samples, want 4", len(report.Samples))
	}
	if s := report.Samples[0]; s.Name != "flowzipd_sessions_active" || s.Value != 3 || s.Labels != nil {
		t.Errorf("bare gauge mangled: %+v", s)
	}
	if s := report.Samples[1]; s.Value != 1048576 {
		t.Errorf("scientific-notation value mangled: %+v", s)
	}
	if s := report.Samples[2]; s.Labels["tenant"] != "lab-a" || s.Value != 8192 {
		t.Errorf("labeled counter mangled: %+v", s)
	}
	if s := report.Samples[3]; s.Labels["tenant"] != "lab-b" || s.Labels["region"] != "eu" {
		t.Errorf("multi-label counter mangled: %+v", s)
	}
}

// TestParsePromRejectsGarbage: a metrics page has no legitimate unparseable
// lines, so they are errors, not silently dropped samples.
func TestParsePromRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"flowzipd_x one\n",
		"flowzipd_x{tenant=\"a\" 1\n",
		"flowzipd_x{tenant=a} 1\n",
		"just some words\n",
	} {
		if _, err := parseProm(strings.NewReader(bad)); err == nil {
			t.Errorf("parseProm(%q) accepted", bad)
		}
	}
}

// TestParsePromLabelEscapes: the exposition format's \\, \" and \n escapes
// round-trip.
func TestParsePromLabelEscapes(t *testing.T) {
	s, err := parsePromLine(`x{k="a\"b\\c\nd"} 1`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Labels["k"] != "a\"b\\c\nd" {
		t.Errorf("escaped label = %q", s.Labels["k"])
	}
}

// TestStripProcsSuffix pins the name transform: only a trailing all-digit
// segment is the GOMAXPROCS suffix; dashes inside benchmark and
// sub-benchmark names must survive.
func TestStripProcsSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-8":                 "BenchmarkX",
		"BenchmarkX":                   "BenchmarkX",
		"BenchmarkX/4-shards-8":        "BenchmarkX/4-shards",
		"BenchmarkX/4-shards":          "BenchmarkX/4-shards",
		"BenchmarkRace-to-the-top-16":  "BenchmarkRace-to-the-top",
		"BenchmarkTrailingDash-":       "BenchmarkTrailingDash-",
		"BenchmarkDistributedLoopback": "BenchmarkDistributedLoopback",
	}
	for in, want := range cases {
		if got := stripProcsSuffix(in); got != want {
			t.Errorf("stripProcsSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
