// Command flowzipd is the long-lived multi-tenant ingestion daemon: capture
// clients (flowzip ingest, or anything speaking the framed session protocol)
// stream packet batches over TCP, the daemon compresses each session with its
// own bounded pipeline, and the archives land under one directory per tenant,
// rotated on size/age boundaries with a .fzmeta sidecar each. Every archive
// segment is byte-for-byte identical to a serial flowzip compress over the
// same packets.
//
// Usage:
//
//	flowzipd -listen :9100 -dir /var/lib/flowzip [-metrics :9101 [-pprof]]
//	flowzipd -listen :9100 -dir archives -rotate-packets 1000000 -rotate-age 1h
//	flowzipd -listen :9100 -dir archives -max-sessions 64 -max-archive-bytes 1e9
//
// The daemon applies backpressure per session — a batch is acked only after
// it is inside that session's pipeline, and the pipeline's residency window
// (-maxresident) bounds daemon memory — so a capture client can never run
// ahead of compression. -metrics serves Prometheus text on /metrics —
// session and segment counters, batch/segment latency histograms, pipeline
// and Go runtime series — and -pprof adds net/http/pprof plus expvar under
// /debug on the same listener.
//
// SIGINT/SIGTERM drains gracefully: open sessions are finalized (clients see
// a drain notice with their summary), buffered packets are flushed into
// archives, and the process exits once every session has landed or
// -drain-timeout expires (a second signal forces immediate exit).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flowzip/internal/cli"
	"flowzip/internal/obs"
	"flowzip/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowzipd: ")
	fs := flag.NewFlagSet("flowzipd", flag.ExitOnError)
	listen := fs.String("listen", ":9100", "TCP address to accept capture sessions on")
	metrics := cli.MetricsAddrFlag(fs, "metrics")
	debug := cli.PprofFlag(fs)
	dir := fs.String("dir", "", "archive root; each tenant's segments land in <dir>/<tenant>/")
	workers := cli.WorkersFlag(fs, "each session's compression shards")
	sharedTpl := cli.SharedTemplatesFlag(fs, "each session's compression shards")
	maxResident := cli.MaxResidentFlag(fs)
	maxSessions := fs.Int("max-sessions", 0, "cap on concurrently open sessions across all tenants (0 = unlimited)")
	maxArchiveBytes := fs.Int64("max-archive-bytes", 0, "cap on encoded archive bytes per tenant over the daemon's lifetime (0 = unlimited)")
	rotPackets, rotAge := cli.RotationFlags(fs)
	buildNet := cli.NetFlags(fs, "session", "the session's next packet batch", false)
	window := cli.WindowFlag(fs, "each session")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long graceful shutdown waits for open sessions to finalize")
	quiet := fs.Bool("q", false, "suppress per-session progress on stderr")
	fs.Parse(os.Args[1:])

	if *dir == "" {
		log.Fatal("-dir required")
	}
	if err := cli.ValidateWorkers(*workers); err != nil {
		log.Fatal(err)
	}
	if err := cli.ValidateMaxResident(*maxResident); err != nil {
		log.Fatal(err)
	}
	if *maxSessions < 0 {
		log.Fatalf("-max-sessions %d must be >= 0", *maxSessions)
	}
	if *maxArchiveBytes < 0 {
		log.Fatalf("-max-archive-bytes %d must be >= 0", *maxArchiveBytes)
	}
	if err := cli.ValidateRotation(*rotPackets, *rotAge); err != nil {
		log.Fatal(err)
	}
	nc := buildNet()
	if err := cli.ValidateNet(nc); err != nil {
		log.Fatal(err)
	}
	if err := cli.ValidateWindow(*window); err != nil {
		log.Fatal(err)
	}
	nc.Window = *window
	if err := cli.ValidatePprof(*debug, *metrics); err != nil {
		log.Fatal(err)
	}

	cfg := server.Config{
		ListenAddr:      *listen,
		MetricsAddr:     *metrics,
		Debug:           *debug,
		Dir:             *dir,
		Workers:         *workers,
		SharedTemplates: *sharedTpl,
		Net:             nc,
		Quotas: server.Quotas{
			MaxSessions:     *maxSessions,
			MaxResident:     *maxResident,
			MaxArchiveBytes: *maxArchiveBytes,
		},
		Rotation: server.Rotation{MaxPackets: *rotPackets, MaxAge: *rotAge},
	}
	if !*quiet {
		cfg.Logger = obs.NewLogger("flowzipd")
	}
	d, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "flowzipd: ingesting on %s, archives under %s\n", d.Addr(), *dir)
	if ma := d.MetricsAddr(); ma != nil {
		fmt.Fprintf(os.Stderr, "flowzipd: metrics on http://%s/metrics\n", ma)
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	sig := <-sigs
	log.Printf("%s: draining %d open sessions (up to %v; signal again to force exit)",
		sig, d.ActiveSessions(), *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sigs
		log.Print("forced exit")
		cancel()
	}()
	if err := d.Shutdown(ctx); err != nil {
		d.Close()
		log.Fatalf("drain incomplete: %v", err)
	}
	log.Print("drained cleanly")
}
