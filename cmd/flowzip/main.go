// Command flowzip compresses and decompresses packet traces with the
// flow-clustering codec, and compares the paper's baseline methods.
//
// Usage:
//
//	flowzip compress  -i web.tsh -o web.fz [-shortmax 50] [-limit 2] [-workers 8] [-shared-templates]
//	flowzip compress  -i big.pcap -o big.fz -stream [-maxresident N] [-progress]
//	flowzip compress  -i web.tsh -o web.fz -index [-index-group 256]
//	flowzip compress  -i web.tsh -o web.fz [-cpuprofile cpu.out] [-memprofile mem.out]
//	flowzip compress  -i web.tsh -o web.fz -trace-out web.trace.json
//	flowzip decompress -i web.fz -o back.tsh [-workers 4]
//	flowzip extract   -i web.fz -o sub.tsh -prefix 10.1.0.0/16 [-from 2s] [-to 10s]
//	flowzip inspect   -i web.fz            (also reads .fzshard shard files)
//	flowzip compare   -i web.tsh
//
//	flowzip shard      -i web.tsh -shard 0 -shards 4 -o web.s0.fzshard
//	flowzip merge      -o web.fz web.s0.fzshard ... web.s3.fzshard
//	flowzip coordinate -listen :9000 -shards 4 -o web.fz [-metrics-addr :9101 [-pprof]]
//	flowzip worker     -connect host:9000 -i web.tsh
//	flowzip ingest     -connect host:9100 -tenant lab -i web.tsh
//
// -workers selects the compression shards: 0 (the default) uses one shard
// per CPU, 1 runs the serial pipeline; serial, parallel and streaming modes
// all produce byte-identical archives. -shared-templates shares one global
// template snapshot across the shards, shrinking per-shard state and merge
// work on template-heavy traffic without changing a single output byte.
// -stream reads the input incrementally — a timestamp-sorted capture of any
// size compresses in bounded memory, with -maxresident capping the packets
// resident in the pipeline.
//
// -index appends a seekable footer index (a v2 archive) mapping 5-tuple
// prefixes and time ranges to flow groups. An indexed archive decodes
// everywhere a v1 archive does, and additionally serves the extract verb:
// extract opens the archive without reading the flow body and decodes only
// the groups matching a client-address prefix and/or a time window, printing
// how many bytes it touched versus a full decode. decompress -workers splits
// the regeneration across CPUs; the output is byte-identical to -workers 1.
//
// The distributed verbs split the same work across processes or machines:
// shard compresses one 5-tuple partition of a trace into a serializable
// .fzshard file and merge folds a complete set back into an archive, while
// coordinate/worker run the same split over TCP — workers register with the
// coordinator, receive partition assignments and push shard state back.
// However the shards traveled, the merged archive is byte-for-byte
// identical to the single-machine compress output.
//
// -trace-out (compress, extract) records a Chrome trace-event JSON timeline
// of the run — partition, per-shard compression, finalize, merge and encode
// spans — loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
// coordinate -metrics-addr serves the coordinator's Prometheus counters
// (worker registrations, assignments, retries, shard latency) on /metrics;
// -pprof adds net/http/pprof under /debug on the same listener.
//
// ingest streams a capture into a running flowzipd daemon (cmd/flowzipd):
// the daemon compresses the session server-side and rotates the archives
// under its tenant directory, while acks propagate its backpressure to this
// client. inspect also reads the daemon's .fzmeta segment sidecars, either
// directly or alongside the archive segment they annotate.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"flowzip/internal/baseline"
	"flowzip/internal/cli"
	"flowzip/internal/core"
	"flowzip/internal/dist"
	"flowzip/internal/flow"
	"flowzip/internal/obs"
	"flowzip/internal/pkt"
	"flowzip/internal/server"
	"flowzip/internal/stats"
	"flowzip/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowzip: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "compress":
		runCompress(args)
	case "decompress":
		runDecompress(args)
	case "extract":
		runExtract(args)
	case "inspect":
		runInspect(args)
	case "compare":
		runCompare(args)
	case "synth":
		runSynth(args)
	case "shard":
		runShard(args)
	case "merge":
		runMerge(args)
	case "coordinate":
		runCoordinate(args)
	case "worker":
		runWorker(args)
	case "ingest":
		runIngest(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: flowzip <command> [flags]

commands:
  compress    compress a trace (.tsh/.pcap) into a flowzip archive
  decompress  regenerate a synthetic trace from an archive
  extract     decode only the flows matching a prefix/time filter (indexed archives)
  inspect     print archive, .fzshard or .fzmeta statistics
  compare     run all baseline compressors on a trace
  synth       generate a new trace from an archive's traffic model
  shard       compress one partition of a trace into a .fzshard file
  merge       fold a complete set of .fzshard files into an archive
  coordinate  serve partition assignments and merge worker results (TCP)
  worker      compress partitions for a coordinator (TCP)
  ingest      stream a trace into a flowzipd daemon session (TCP)`)
	os.Exit(2)
}

// codecFlags registers the codec parameter flags shared by compress, shard
// and coordinate, returning a builder for the resulting Options.
func codecFlags(fs *flag.FlagSet) func() core.Options {
	shortMax := fs.Int("shortmax", 50, "largest short-flow packet count")
	limit := fs.Float64("limit", 2.0, "similarity threshold (% of max distance)")
	w1 := fs.Int("w1", 16, "flag-class weight")
	w2 := fs.Int("w2", 4, "dependence weight")
	w3 := fs.Int("w3", 1, "size-class weight")
	return func() core.Options {
		opts := core.DefaultOptions()
		opts.ShortMax = *shortMax
		opts.LimitPct = *limit
		opts.Weights = flow.Weights{Flag: *w1, Dep: *w2, Size: *w3}
		return opts
	}
}

// writeArchive encodes arch to path and prints the ratio summary line.
func writeArchive(path string, arch *core.Archive) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	sizes, err := arch.Encode(f)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	ratio := float64(sizes.Total()) / float64(arch.SourceTSHBytes)
	fmt.Printf("%s: %d packets, %d flows -> %d bytes (ratio %.4f)\n",
		path, arch.SourcePackets, arch.Flows(), sizes.Total(), ratio)
}

func runShard(args []string) {
	fs := flag.NewFlagSet("shard", flag.ExitOnError)
	in := fs.String("i", "", "input trace (.tsh or .pcap)")
	out := fs.String("o", "", "output shard file (default <input>.s<shard>of<shards>.fzshard)")
	shard := cli.ShardIndexFlag(fs)
	shards := cli.ShardsFlag(fs)
	opts := codecFlags(fs)
	fs.Parse(args)
	if *in == "" {
		log.Fatal("shard: -i required")
	}
	if err := cli.ValidateShards(*shards); err != nil {
		log.Fatal("shard: ", err)
	}
	if err := cli.ValidateShardIndex(*shard, *shards); err != nil {
		log.Fatal("shard: ", err)
	}
	if *out == "" {
		*out = fmt.Sprintf("%s.s%dof%d.fzshard", *in, *shard, *shards)
	}
	src, err := trace.OpenStream(*in, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()
	r, err := core.CompressShardSource(src, opts(), *shard, *shards)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := dist.EncodeShardState(f, r); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: shard %d/%d, %d flows, %d templates (%d packets scanned)\n",
		*out, r.Index, r.Count, len(r.Flows), len(r.Templates), r.Packets)
}

func runMerge(args []string) {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("o", "out.fz", "output archive")
	fs.Parse(args)
	paths := fs.Args()
	if len(paths) == 0 {
		log.Fatal("merge: shard files required as arguments")
	}
	arch, err := dist.MergeShardFiles(paths)
	if err != nil {
		log.Fatal(err)
	}
	writeArchive(*out, arch)
}

func runCoordinate(args []string) {
	fs := flag.NewFlagSet("coordinate", flag.ExitOnError)
	listen := fs.String("listen", ":9000", "TCP address to accept workers on")
	out := fs.String("o", "out.fz", "output archive")
	shards := cli.ShardsFlag(fs)
	quiet := fs.Bool("q", false, "suppress per-shard progress on stderr")
	opts := codecFlags(fs)
	buildNet := cli.NetFlags(fs, "worker", "one shard result", true)
	metricsAddr := cli.MetricsAddrFlag(fs, "metrics-addr")
	debug := cli.PprofFlag(fs)
	fs.Parse(args)
	if err := cli.ValidateShards(*shards); err != nil {
		log.Fatal("coordinate: ", err)
	}
	nc := buildNet()
	if err := cli.ValidateNet(nc); err != nil {
		log.Fatal("coordinate: ", err)
	}
	if err := cli.ValidatePprof(*debug, *metricsAddr); err != nil {
		log.Fatal("coordinate: ", err)
	}
	cfg := dist.CoordinatorConfig{
		NetConfig:   nc,
		Shards:      *shards,
		Opts:        opts(),
		ListenAddr:  *listen,
		MetricsAddr: *metricsAddr,
		Debug:       *debug,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	coord, err := dist.NewCoordinator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "flowzip: coordinating %d shards on %s\n", *shards, coord.Addr())
	if ma := coord.MetricsAddr(); ma != nil {
		fmt.Fprintf(os.Stderr, "flowzip: metrics on http://%s/metrics\n", ma)
	}
	arch, err := coord.Wait()
	if err != nil {
		log.Fatal(err)
	}
	writeArchive(*out, arch)
}

func runWorker(args []string) {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	connect := fs.String("connect", "", "coordinator TCP address (host:port)")
	in := fs.String("i", "", "input trace (.tsh or .pcap); must be the same stream on every worker")
	quiet := fs.Bool("q", false, "suppress per-shard progress on stderr")
	buildNet := cli.NetFlags(fs, "coordinator", "the next assignment", false)
	fs.Parse(args)
	if *connect == "" {
		log.Fatal("worker: -connect required")
	}
	if *in == "" {
		log.Fatal("worker: -i required")
	}
	nc := buildNet()
	if err := cli.ValidateNet(nc); err != nil {
		log.Fatal("worker: ", err)
	}
	cfg := dist.WorkerConfig{
		NetConfig: nc,
		Source:    func() (core.PacketSource, error) { return trace.OpenStream(*in, 0) },
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	w, err := dist.Dial(*connect, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Run(); err != nil {
		log.Fatal(err)
	}
}

func runIngest(args []string) {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	connect := fs.String("connect", "", "flowzipd daemon TCP address (host:port)")
	tenant := fs.String("tenant", "", "tenant the session's archives land under")
	in := fs.String("i", "", "input trace (.tsh or .pcap)")
	opts := codecFlags(fs)
	buildNet := cli.NetFlags(fs, "daemon", "the daemon's cumulative ack", false)
	window := cli.WindowFlag(fs, "the ingest stream")
	fs.Parse(args)
	if *connect == "" {
		log.Fatal("ingest: -connect required")
	}
	if *tenant == "" {
		log.Fatal("ingest: -tenant required")
	}
	if *in == "" {
		log.Fatal("ingest: -i required")
	}
	nc := buildNet()
	if err := cli.ValidateNet(nc); err != nil {
		log.Fatal("ingest: ", err)
	}
	if err := cli.ValidateWindow(*window); err != nil {
		log.Fatal("ingest: ", err)
	}
	nc.Window = *window
	src, err := trace.OpenStream(*in, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()
	sum, err := server.Ingest(*connect, *tenant, src, opts(), nc)
	if err != nil && !errors.Is(err, server.ErrSessionDrained) {
		log.Fatal(err)
	}
	state := "closed"
	if sum.Drained {
		state = "drained by daemon shutdown"
	}
	fmt.Printf("%s: session %s: %d packets, %d flows -> %d archives (%d bytes)\n",
		*tenant, state, sum.Packets, sum.Flows, sum.Archives, sum.ArchiveBytes)
}

func runSynth(args []string) {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	in := fs.String("i", "", "input archive")
	out := fs.String("o", "synth.tsh", "output trace (.tsh or .pcap)")
	flows := fs.Int("flows", 0, "flows to synthesize (0 = same as source)")
	scale := fs.Float64("scale", 1.0, "arrival-rate multiplier")
	seed := fs.Uint64("seed", 1, "random seed")
	fs.Parse(args)
	if *in == "" {
		log.Fatal("synth: -i required")
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	arch, err := core.Decode(f)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultSynthConfig(arch)
	cfg.Seed = *seed
	cfg.Scale = *scale
	if *flows > 0 {
		cfg.Flows = *flows
	}
	tr, err := core.Synthesize(arch, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s\n", *out, tr.ComputeStats())
}

func runCompress(args []string) {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	in := fs.String("i", "", "input trace (.tsh or .pcap)")
	out := fs.String("o", "out.fz", "output archive")
	buildOpts := codecFlags(fs)
	workers := cli.WorkersFlag(fs, "compression shards")
	sharedTpl := cli.SharedTemplatesFlag(fs, "compression shards")
	stream := fs.Bool("stream", false, "stream the input in bounded memory (requires timestamp-sorted input)")
	maxResident := cli.MaxResidentFlag(fs)
	progress := fs.Bool("progress", false, "streaming: report packet progress on stderr")
	index := fs.Bool("index", false, "append a seekable footer index (v2 archive, serves the extract verb)")
	indexGroup := fs.Int("index-group", 0, "records per index group (0 = default)")
	cpuProfile := cli.CPUProfileFlag(fs, "compression")
	memProfile := cli.MemProfileFlag(fs, "compression")
	traceOut := cli.TraceOutFlag(fs, "compression run")
	fs.Parse(args)
	if *in == "" {
		log.Fatal("compress: -i required")
	}
	if err := cli.ValidateWorkers(*workers); err != nil {
		log.Fatal("compress: ", err)
	}
	if err := cli.ValidateMaxResident(*maxResident); err != nil {
		log.Fatal("compress: ", err)
	}
	if *indexGroup != 0 && !*index {
		log.Fatal("compress: -index-group requires -index")
	}
	idxCfg := core.IndexConfig{Enabled: *index, GroupSize: *indexGroup}
	if err := idxCfg.Validate(); err != nil {
		log.Fatal("compress: ", err)
	}
	stopProfiles, err := cli.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal("compress: ", err)
	}

	var arch *core.Archive
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer("flowzip compress")
	}
	cfg := core.PipelineConfig{
		Workers:         *workers,
		SharedTemplates: *sharedTpl,
		MaxResident:     *maxResident,
		Index:           idxCfg,
		Trace:           tracer,
	}
	if *stream && *progress {
		cfg.Progress = func(packets int64) {
			fmt.Fprintf(os.Stderr, "\rflowzip: compressed %d packets", packets)
		}
	}
	pipe, err := core.NewPipeline(buildOpts(), cfg)
	if err != nil {
		log.Fatal("compress: ", err)
	}
	if *stream {
		// The residency window only covers the pipeline; cap the source's
		// read batch too so a small -maxresident is honored end to end.
		batch := trace.DefaultBatch
		if *maxResident < batch {
			batch = *maxResident
		}
		src, err := trace.OpenStream(*in, batch)
		if err != nil {
			log.Fatal(err)
		}
		defer src.Close()
		arch, err = pipe.Compress(src)
		if *progress {
			fmt.Fprintln(os.Stderr)
		}
		if err != nil {
			log.Fatal(err)
		}
	} else {
		tr, err := trace.LoadFile(*in)
		if err != nil {
			log.Fatal(err)
		}
		if !tr.IsSorted() {
			tr.Sort()
		}
		arch, err = pipe.CompressTrace(tr)
		if err != nil {
			log.Fatal(err)
		}
	}
	// Profiles cover the compression itself, not the archive write.
	if err := stopProfiles(); err != nil {
		log.Fatal("compress: ", err)
	}
	esp := tracer.Span(0, "encode-archive")
	writeArchive(*out, arch)
	esp.End()
	if tracer != nil {
		if err := tracer.WriteFile(*traceOut); err != nil {
			log.Fatal("compress: -trace-out: ", err)
		}
		fmt.Fprintf(os.Stderr, "flowzip: trace written to %s\n", *traceOut)
	}
}

func runDecompress(args []string) {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	in := fs.String("i", "", "input archive")
	out := fs.String("o", "out.tsh", "output trace (.tsh or .pcap)")
	workers := cli.WorkersFlag(fs, "decompression workers")
	fs.Parse(args)
	if *in == "" {
		log.Fatal("decompress: -i required")
	}
	if err := cli.ValidateWorkers(*workers); err != nil {
		log.Fatal("decompress: ", err)
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	arch, err := core.Decode(f)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := core.DecompressParallel(arch, *workers)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s\n", *out, tr.ComputeStats())
}

// runExtract serves the selective read path: it opens an indexed (v2)
// archive without touching the flow body, decodes only the groups matching
// the prefix/time filter, and reports how much of the archive that took.
func runExtract(args []string) {
	fs := flag.NewFlagSet("extract", flag.ExitOnError)
	in := fs.String("i", "", "input archive (must be indexed: compress -index)")
	out := fs.String("o", "extract.tsh", "output trace (.tsh or .pcap)")
	prefix := fs.String("prefix", "", "client-address prefix a.b.c.d[/len] (empty = all addresses)")
	from := fs.Duration("from", 0, "start of the flow time window (offset into the trace)")
	to := fs.Duration("to", 0, "end of the flow time window (0 = open-ended)")
	traceOut := cli.TraceOutFlag(fs, "extract query")
	fs.Parse(args)
	if *in == "" {
		log.Fatal("extract: -i required")
	}
	filter := core.FlowFilter{From: *from, To: *to}
	if *prefix != "" {
		ip, plen, err := parsePrefix(*prefix)
		if err != nil {
			log.Fatal("extract: ", err)
		}
		filter.Prefix, filter.PrefixLen = ip, plen
	}
	if err := filter.Validate(); err != nil {
		log.Fatal("extract: ", err)
	}
	r, err := core.OpenReaderFile(*in)
	if err != nil {
		if errors.Is(err, core.ErrNoIndex) {
			log.Fatalf("extract: %s has no footer index; recompress it with flowzip compress -index", *in)
		}
		log.Fatal(err)
	}
	defer r.Close()
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer("flowzip extract")
		r.SetTracer(tracer)
	}
	tr, err := r.ExtractFlows(filter)
	if err != nil {
		log.Fatal(err)
	}
	if tracer != nil {
		if err := tracer.WriteFile(*traceOut); err != nil {
			log.Fatal("extract: -trace-out: ", err)
		}
		fmt.Fprintf(os.Stderr, "flowzip: trace written to %s\n", *traceOut)
	}
	if err := tr.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	st, is := r.Stats(), r.IndexStats()
	fmt.Printf("%s: %d flows, %d packets\n", *out, st.FlowsMatched, tr.Len())
	fmt.Printf("read %d of %d body bytes (%d of %d groups, %d templates); %d bytes fetched in total\n",
		st.BodyBytesRead, is.BodyBytes, st.GroupsDecoded, is.Groups, st.TemplatesLoaded, st.BytesRead)
}

// parsePrefix parses a.b.c.d or a.b.c.d/len into an address and prefix length.
func parsePrefix(s string) (pkt.IPv4, int, error) {
	ipStr, plen := s, 32
	if i := strings.IndexByte(s, '/'); i >= 0 {
		n, err := strconv.Atoi(s[i+1:])
		if err != nil || n < 0 || n > 32 {
			return 0, 0, fmt.Errorf("bad prefix length %q (want 0..32)", s[i+1:])
		}
		ipStr, plen = s[:i], n
	}
	var oct [4]int
	if n, err := fmt.Sscanf(ipStr, "%d.%d.%d.%d", &oct[0], &oct[1], &oct[2], &oct[3]); err != nil || n != 4 {
		return 0, 0, fmt.Errorf("bad address %q (want a.b.c.d)", ipStr)
	}
	var ip uint32
	for _, o := range oct {
		if o < 0 || o > 255 {
			return 0, 0, fmt.Errorf("bad address %q: octet %d out of range", ipStr, o)
		}
		ip = ip<<8 | uint32(o)
	}
	return pkt.IPv4(ip), plen, nil
}

func runInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("i", "", "input archive (.fz), shard file (.fzshard) or daemon sidecar (.fzmeta)")
	fs.Parse(args)
	if *in == "" {
		log.Fatal("inspect: -i required")
	}
	if strings.HasSuffix(*in, server.MetaSuffix) {
		inspectMeta(*in)
		return
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if peek, err := br.Peek(len(dist.Magic)); err == nil && string(peek) == dist.Magic {
		inspectShard(*in, br)
		return
	}
	arch, err := core.Decode(br)
	if err != nil {
		log.Fatal(err)
	}
	sizes, err := arch.Encode(discard{})
	if err != nil {
		log.Fatal(err)
	}
	t := &stats.Table{Title: "archive " + *in, Headers: []string{"field", "value"}}
	t.AddRowf("flows", arch.Flows())
	t.AddRowf("packets", arch.Packets())
	t.AddRowf("short templates", len(arch.ShortTemplates))
	t.AddRowf("long templates", len(arch.LongTemplates))
	t.AddRowf("addresses", len(arch.Addresses))
	t.AddRowf("weights", arch.Opts.Weights.String())
	t.AddRowf("short max", arch.Opts.ShortMax)
	t.AddRowf("limit %", arch.Opts.LimitPct)
	t.AddRowf("encoded bytes", sizes.Total())
	t.AddRowf("source packets", arch.SourcePackets)
	t.AddRowf("source TSH bytes", arch.SourceTSHBytes)
	if arch.SourceTSHBytes > 0 {
		t.AddRowf("ratio", float64(sizes.Total())/float64(arch.SourceTSHBytes))
	}
	// An indexed (v2) archive carries a footer the Reader serves selective
	// queries from; surface its shape when the container has one.
	if r, err := core.OpenReaderFile(*in); err == nil {
		is := r.IndexStats()
		t.AddRowf("index group size", is.GroupSize)
		t.AddRowf("index groups", is.Groups)
		t.AddRowf("index bytes", is.IndexBytes)
		t.AddRowf("indexed body bytes", is.BodyBytes)
		r.Close()
	}
	// A daemon segment carries a JSON sidecar attributing the archive to its
	// tenant and rotation sequence; fold it into the same table when present.
	if meta, err := server.ReadSegmentMeta(*in); err == nil {
		addMetaRows(t, meta)
	}
	t.Render(os.Stdout)
}

// inspectMeta prints a daemon segment sidecar given the .fzmeta path itself.
func inspectMeta(name string) {
	meta, err := server.ReadSegmentMeta(name)
	if err != nil {
		log.Fatal(err)
	}
	t := &stats.Table{Title: "daemon segment " + name, Headers: []string{"field", "value"}}
	addMetaRows(t, meta)
	t.Render(os.Stdout)
}

// addMetaRows appends the daemon-session attribution of one archive segment.
func addMetaRows(t *stats.Table, m *server.SegmentMeta) {
	t.AddRowf("tenant", m.Tenant)
	t.AddRowf("session", m.Session)
	t.AddRowf("segment seq", m.Seq)
	t.AddRowf("segment reason", m.Reason)
	t.AddRowf("segment packets", m.Packets)
	t.AddRowf("segment flows", m.Flows)
	t.AddRowf("segment bytes", m.Bytes)
	t.AddRowf("first timestamp", time.Unix(0, m.FirstTS).UTC().Format(time.RFC3339Nano))
	t.AddRowf("last timestamp", time.Unix(0, m.LastTS).UTC().Format(time.RFC3339Nano))
}

// inspectShard prints the header of a .fzshard shard-state file.
func inspectShard(name string, r *bufio.Reader) {
	h, err := dist.ReadShardHeader(r)
	if err != nil {
		log.Fatal(err)
	}
	t := &stats.Table{Title: "shard state " + name, Headers: []string{"field", "value"}}
	t.AddRowf("shard", fmt.Sprintf("%d of %d", h.Index, h.Count))
	t.AddRowf("flows", h.Flows)
	t.AddRowf("templates", h.Templates)
	t.AddRowf("stream packets", h.Packets)
	t.AddRowf("partition seed", h.PartitionSeed)
	t.AddRowf("options fingerprint", fmt.Sprintf("%016x", h.Fingerprint))
	if h.SharedGen != 0 {
		t.AddRowf("shared store", fmt.Sprintf("%016x", h.SharedGen))
	}
	t.AddRowf("weights", h.Opts.Weights.String())
	t.AddRowf("short max", h.Opts.ShortMax)
	t.AddRowf("limit %", h.Opts.LimitPct)
	t.Render(os.Stdout)
}

func runCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	in := fs.String("i", "", "input trace")
	fs.Parse(args)
	if *in == "" {
		log.Fatal("compare: -i required")
	}
	tr, err := trace.LoadFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	if !tr.IsSorted() {
		tr.Sort()
	}
	t := &stats.Table{Title: "compression comparison: " + *in, Headers: []string{"method", "bytes", "ratio"}}
	for _, m := range baseline.All() {
		sz, err := baseline.Size(m, tr)
		if err != nil {
			log.Fatalf("%s: %v", m.Name(), err)
		}
		ratio, err := baseline.Ratio(m, tr)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(m.Name(), fmt.Sprintf("%d", sz), fmt.Sprintf("%.4f", ratio))
	}
	t.Render(os.Stdout)
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
