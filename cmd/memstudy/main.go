// Command memstudy runs one of the Section 6 benchmark kernels (Route, NAT
// or RTR) over a trace file with the ATOM-equivalent instrumentation and
// prints per-packet memory-access and cache-miss statistics — the raw
// material of the paper's Figures 2 and 3 for an arbitrary input trace.
//
// Usage:
//
//	memstudy -i web.tsh -kernel Route -routes 100000
//	memstudy -i web.tsh -base web.tsh -cache 16384 -ways 2 -block 32
//	memstudy -i web.tsh -codec -workers 8 [-shared-templates]   # study the codec round-trip
//
// The forwarding table covers the popular destination prefixes of -base
// (default: the input trace itself) plus -routes random background routes.
// -workers selects the -codec compression shards: 0 (the default) uses one
// shard per CPU, 1 runs the serial pipeline — the round-tripped trace is
// identical either way. -shared-templates shares one template snapshot
// across those shards (same trace again, less merge work) and prints the
// snapshot hit statistics on stderr.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"flowzip/internal/cli"
	"flowzip/internal/core"
	"flowzip/internal/memsim"
	"flowzip/internal/netbench"
	"flowzip/internal/stats"
	"flowzip/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("memstudy: ")

	var (
		in        = flag.String("i", "", "input trace (.tsh or .pcap)")
		base      = flag.String("base", "", "trace whose popular prefixes the table covers (default: input)")
		kernel    = flag.String("kernel", "Route", "kernel: Route, NAT or RTR")
		routes    = flag.Int("routes", 20000, "background routes in the table")
		minSrc    = flag.Int("minsrc", 5, "distinct sources for a /24 to qualify as covered")
		cache     = flag.Int("cache", 16*1024, "cache size in bytes")
		ways      = flag.Int("ways", 2, "cache associativity")
		block     = flag.Int("block", 32, "cache block size in bytes")
		seed      = flag.Uint64("seed", 1, "random seed")
		codec     = flag.Bool("codec", false, "round-trip the trace through the flow-clustering codec first (the paper's decompressed-trace configuration)")
		workers   = cli.WorkersFlag(flag.CommandLine, "compression shards for -codec")
		sharedTpl = cli.SharedTemplatesFlag(flag.CommandLine, "the -codec compression shards")
	)
	flag.Parse()
	if *in == "" {
		log.Fatal("-i required")
	}
	switch {
	case *routes < 0:
		log.Fatalf("-routes %d must be >= 0", *routes)
	case *minSrc < 1:
		log.Fatalf("-minsrc %d must be >= 1", *minSrc)
	case *cache < 1 || *ways < 1 || *block < 1:
		log.Fatalf("cache geometry must be positive: -cache %d -ways %d -block %d", *cache, *ways, *block)
	}
	if err := cli.ValidateWorkers(*workers); err != nil {
		log.Fatal(err)
	}

	tr, err := trace.LoadFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	if *codec {
		if !tr.IsSorted() {
			tr.Sort()
		}
		var pstats core.ParallelStats
		arch, err := core.CompressParallelConfig(tr, core.DefaultOptions(),
			core.ParallelConfig{Workers: *workers, SharedTemplates: *sharedTpl, Stats: &pstats})
		if err != nil {
			log.Fatal(err)
		}
		if *sharedTpl {
			fmt.Fprintf(os.Stderr,
				"memstudy: shared templates: %d workers, %d/%d snapshot hits, %d shared / %d overflow flows, %d merge Match calls\n",
				pstats.Workers, pstats.SharedHits, pstats.SharedLookups,
				pstats.SharedFlows, pstats.OverflowFlows, pstats.MergeMatchCalls)
		}
		tr, err = core.Decompress(arch)
		if err != nil {
			log.Fatal(err)
		}
	}
	baseTr := tr
	if *base != "" && *base != *in {
		baseTr, err = trace.LoadFile(*base)
		if err != nil {
			log.Fatal(err)
		}
	}

	var kind netbench.KernelKind
	switch *kernel {
	case "Route":
		kind = netbench.KindRoute
	case "NAT":
		kind = netbench.KindNAT
	case "RTR":
		kind = netbench.KindRTR
	default:
		log.Fatalf("unknown kernel %q", *kernel)
	}

	table := netbench.CoveringTable(baseTr, *minSrc, *routes, *seed)
	cacheModel, err := memsim.NewCache(memsim.CacheConfig{
		TotalBytes: *cache, BlockBytes: *block, Ways: *ways,
	})
	if err != nil {
		log.Fatal(err)
	}
	rec := memsim.NewRecorder(cacheModel)
	k, err := netbench.NewKernel(kind, table, rec)
	if err != nil {
		log.Fatal(err)
	}
	res := netbench.Run(k, tr, rec)

	accs := stats.Summarize(res.AccessCounts())
	miss := stats.Summarize(res.MissRates())
	t := &stats.Table{
		Title:   fmt.Sprintf("%s over %s (%d routes)", k.Name(), tr.Name, len(table)),
		Headers: []string{"metric", "value"},
	}
	t.AddRowf("packets", accs.N)
	t.AddRowf("accesses/pkt mean", accs.Mean)
	t.AddRowf("accesses/pkt p50", accs.P50)
	t.AddRowf("accesses/pkt p90", accs.P90)
	t.AddRowf("accesses/pkt max", accs.Max)
	t.AddRowf("miss rate mean", fmt.Sprintf("%.2f%%", 100*miss.Mean))
	t.AddRowf("miss rate p90", fmt.Sprintf("%.2f%%", 100*miss.P90))
	total, misses := rec.Totals()
	t.AddRowf("total accesses", total)
	t.AddRowf("total misses", misses)
	t.Render(os.Stdout)

	// Figure 3-style buckets for this single trace.
	h := stats.NewHistogram([]float64{0, 0.05, 0.10, 0.20})
	for _, mr := range res.MissRates() {
		h.Add(mr)
	}
	bt := &stats.Table{Title: "miss-rate buckets", Headers: []string{"bucket", "traffic"}}
	labels := []string{"0%-5%", "5%-10%", "10%-20%", ">20%"}
	for i, l := range labels {
		bt.AddRow(l, fmt.Sprintf("%.1f%%", 100*h.Fraction(i)))
	}
	bt.Render(os.Stdout)
}
