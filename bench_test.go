// Benchmark harness: one benchmark per table and figure of the paper
// (regenerating the experiment end to end and reporting its headline metric
// via b.ReportMetric), plus micro-benchmarks of the codec and substrates.
//
// Run everything:  go test -bench=. -benchmem
// One experiment:  go test -bench=BenchmarkFig1FileSize -benchtime=1x
package flowzip_test

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"flowzip"
	"flowzip/internal/baseline"
	"flowzip/internal/cluster"
	"flowzip/internal/core"
	"flowzip/internal/figures"
	"flowzip/internal/flow"
	"flowzip/internal/memsim"
	"flowzip/internal/netbench"
	"flowzip/internal/radix"
	"flowzip/internal/stats"
	"flowzip/internal/trace"
)

// benchConfig is the shared experiment scale for the table/figure benches:
// large enough for stable shapes, small enough that -bench=. finishes in
// minutes.
func benchConfig() figures.Config {
	cfg := figures.DefaultConfig()
	cfg.Flows = 4000
	cfg.Duration = 20 * time.Second
	cfg.Steps = 5
	cfg.TableBackground = 10000
	return cfg
}

var (
	benchTraceOnce sync.Once
	benchTrace     *trace.Trace
)

// sharedTrace builds one deterministic Web trace reused by the
// micro-benchmarks.
func sharedTrace() *trace.Trace {
	benchTraceOnce.Do(func() {
		cfg := flowzip.DefaultWebConfig()
		cfg.Seed = 1
		cfg.Flows = 4000
		cfg.Duration = 20 * time.Second
		benchTrace = flowzip.GenerateWeb(cfg)
	})
	return benchTrace
}

// --- Experiment benchmarks (one per table/figure) ---

// BenchmarkFig1FileSize regenerates Figure 1 (file size vs elapsed time,
// five methods) and reports the final proposed-method megabytes.
func BenchmarkFig1FileSize(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := figures.Fig1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := fig.Series[4].Points
		b.ReportMetric(last[len(last)-1][1], "proposed_MB")
	}
}

// BenchmarkRatioTable regenerates the Sections 1/5 ratio table and reports
// the proposed method's measured ratio.
func BenchmarkRatioTable(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t, err := figures.RatioTable(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r, err := strconv.ParseFloat(t.Rows[4][2], 64)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r, "ratio")
	}
}

// BenchmarkAnalyticTable regenerates the equation 5–8 table and reports the
// flow-weighted R_vj.
func BenchmarkAnalyticTable(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t, err := figures.AnalyticTable(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r, err := strconv.ParseFloat(t.Rows[0][1], 64)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r, "R_vj")
	}
}

// BenchmarkFlowLengthTable regenerates the Section 3 statistics and reports
// the percentage of flows under 51 packets.
func BenchmarkFlowLengthTable(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t, err := figures.FlowLengthTable(cfg)
		if err != nil {
			b.Fatal(err)
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(t.Rows[0][1], "%"), 64)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(v, "flows<51_%")
	}
}

// BenchmarkFig2MemoryAccess runs the four-trace memory study and reports
// the |decomp-original| mean-access deviation (smaller = better fidelity).
func BenchmarkFig2MemoryAccess(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	cfg.Flows = 2000
	for i := 0; i < b.N; i++ {
		study, err := figures.RunMemStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		mo := stats.Summarize(study.Results[0].AccessCounts()).Mean
		md := stats.Summarize(study.Results[1].AccessCounts()).Mean
		dev := md - mo
		if dev < 0 {
			dev = -dev
		}
		b.ReportMetric(dev, "mean_access_dev")
	}
}

// BenchmarkFig3CacheMiss runs the same study and reports the original
// trace's low-miss (<5%) traffic share.
func BenchmarkFig3CacheMiss(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	cfg.Flows = 2000
	for i := 0; i < b.N; i++ {
		study, err := figures.RunMemStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		t := study.Fig3()
		v, err := strconv.ParseFloat(strings.TrimSuffix(t.Rows[0][1], "%"), 64)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(v, "orig_low_miss_%")
	}
}

// BenchmarkClusterStudy regenerates the Section 2.1 study and reports
// flows-per-cluster concentration.
func BenchmarkClusterStudy(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		_, t, err := figures.ClusterStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		v, err := strconv.ParseFloat(t.Rows[2][1], 64)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(v, "flows_per_cluster")
	}
}

// BenchmarkWeightAblation sweeps the characterization weights.
func BenchmarkWeightAblation(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := figures.WeightAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThresholdAblation sweeps the eq. 4 similarity threshold.
func BenchmarkThresholdAblation(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := figures.ThresholdAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheAblation sweeps cache geometries.
func BenchmarkCacheAblation(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	cfg.Flows = 1500
	for i := 0; i < b.N; i++ {
		if _, err := figures.CacheAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks ---

// BenchmarkCompressSerial measures serial codec throughput on the Web trace
// — the baseline every parallel and distributed mode must stay byte-identical
// to, and therefore the throughput ceiling of the whole stack. CI publishes
// it (with BenchmarkStoreMatch) as BENCH_core.json so the serial perf
// trajectory is machine-readable.
func BenchmarkCompressSerial(b *testing.B) {
	b.ReportAllocs()
	tr := sharedTrace()
	b.SetBytes(int64(tr.Len()) * 44)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compress(tr, core.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

var (
	benchLargeOnce sync.Once
	benchLarge     *trace.Trace
)

// largeTrace builds the big deterministic Web trace for the parallel-scaling
// benchmarks: enough packets that sharding has real work to distribute.
func largeTrace() *trace.Trace {
	benchLargeOnce.Do(func() {
		cfg := flowzip.DefaultWebConfig()
		cfg.Seed = 1
		cfg.Flows = 20000
		cfg.Duration = 60 * time.Second
		benchLarge = flowzip.GenerateWeb(cfg)
	})
	return benchLarge
}

// BenchmarkCompressParallel measures the sharded pipeline on the large Web
// trace across worker counts. workers=1 is the serial Compress path, so the
// sub-benchmarks read directly as a scaling curve; speedup over serial needs
// GOMAXPROCS > 1 (on a single-CPU host the sharded path only breaks even).
func BenchmarkCompressParallel(b *testing.B) {
	b.ReportAllocs()
	tr := largeTrace()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(tr.Len()) * 44)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.CompressParallel(tr, core.DefaultOptions(), workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompressParallelShared compares the sharded pipeline with and
// without the shared template store on the template-heavy Web trace. The
// shared=off/shared=on pairs at equal worker counts are the headline: the
// merge_match_calls metric is the merge replay's global-store Match count,
// which the shared snapshot must cut (every snapshot-resolved flow skips the
// re-cluster), and shared_hits counts the worker lookups a published
// snapshot absorbed. Archives are byte-identical either way; this benchmark
// measures only the work saved.
func BenchmarkCompressParallelShared(b *testing.B) {
	b.ReportAllocs()
	tr := largeTrace()
	for _, shared := range []bool{false, true} {
		for _, workers := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("shared=%v/workers=%d", shared, workers), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(int64(tr.Len()) * 44)
				var st flowzip.ParallelStats
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cfg := flowzip.ParallelConfig{Workers: workers, SharedTemplates: shared, Stats: &st}
					if _, err := flowzip.CompressParallelConfig(tr, flowzip.DefaultOptions(), cfg); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(st.MergeMatchCalls), "merge_match_calls")
				b.ReportMetric(float64(st.SharedHits), "shared_hits")
				b.ReportMetric(float64(st.SharedTemplates), "shared_templates")
			})
		}
	}
}

// BenchmarkCompressStream measures the streaming pipeline over the large
// Web trace: same shard workers as BenchmarkCompressParallel, but fed in
// batches through the bounded channels rather than from a resident trace.
// The gap between the two is the streaming overhead (packet copying plus
// channel traffic).
func BenchmarkCompressStream(b *testing.B) {
	b.ReportAllocs()
	tr := largeTrace()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(tr.Len()) * 44)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := trace.Batches(tr, 4096)
				if _, err := core.CompressStream(src, core.DefaultOptions(), workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompressLarge is the serial baseline over the same large trace as
// BenchmarkCompressParallel, for direct comparison.
func BenchmarkCompressLarge(b *testing.B) {
	b.ReportAllocs()
	tr := largeTrace()
	b.SetBytes(int64(tr.Len()) * 44)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compress(tr, core.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecompress measures regeneration throughput.
func BenchmarkDecompress(b *testing.B) {
	b.ReportAllocs()
	tr := sharedTrace()
	arch, err := core.Compress(tr, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(tr.Len()) * 44)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Decompress(arch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArchiveEncode measures container serialization.
func BenchmarkArchiveEncode(b *testing.B) {
	b.ReportAllocs()
	arch, err := core.Compress(sharedTrace(), core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arch.Encode(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGZIPBaseline measures the GZIP comparison path.
func BenchmarkGZIPBaseline(b *testing.B) {
	b.ReportAllocs()
	tr := sharedTrace()
	b.SetBytes(int64(tr.Len()) * 44)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.Size(baseline.GZIP{}, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVJEncode measures the RFC 1144-adapted encoder.
func BenchmarkVJEncode(b *testing.B) {
	b.ReportAllocs()
	tr := sharedTrace()
	vj := baseline.NewVJ()
	b.SetBytes(int64(tr.Len()) * 44)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vj.Encode(io.Discard, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPeuhkuriEncode measures the Peuhkuri recoder.
func BenchmarkPeuhkuriEncode(b *testing.B) {
	b.ReportAllocs()
	tr := sharedTrace()
	pz := baseline.NewPeuhkuri()
	b.SetBytes(int64(tr.Len()) * 44)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pz.Encode(io.Discard, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRadixLookup measures uninstrumented longest-prefix-match.
func BenchmarkRadixLookup(b *testing.B) {
	b.ReportAllocs()
	rng := stats.NewRNG(1)
	tree, err := radix.BuildTable(radix.GenerateTable(rng, 100000), nil)
	if err != nil {
		b.Fatal(err)
	}
	addrs := make([]uint32, 4096)
	for i := range addrs {
		addrs[i] = rng.Uint32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Lookup(addrs[i&4095])
	}
}

// BenchmarkRadixLookupInstrumented measures the ATOM-instrumented path with
// the cache model attached.
func BenchmarkRadixLookupInstrumented(b *testing.B) {
	b.ReportAllocs()
	rng := stats.NewRNG(1)
	rec := memsim.NewRecorder(memsim.MustCache(memsim.DefaultCacheConfig()))
	tree, err := radix.BuildTable(radix.GenerateTable(rng, 100000), rec)
	if err != nil {
		b.Fatal(err)
	}
	addrs := make([]uint32, 4096)
	for i := range addrs {
		addrs[i] = rng.Uint32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.BeginPacket()
		tree.Lookup(addrs[i&4095])
		rec.EndPacket()
	}
}

// BenchmarkCacheAccess measures the cache simulator hot path.
func BenchmarkCacheAccess(b *testing.B) {
	b.ReportAllocs()
	c := memsim.MustCache(memsim.DefaultCacheConfig())
	rng := stats.NewRNG(2)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = rng.Uint64() & 0xFFFFF
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095])
	}
}

// BenchmarkTemplateMatch measures the cluster-store similarity search over
// a realistic vector population.
func BenchmarkTemplateMatch(b *testing.B) {
	b.ReportAllocs()
	flows := flow.Assemble(sharedTrace().Packets)
	vectors := make([]flow.Vector, 0, len(flows))
	for _, f := range flows {
		if f.Len() <= 50 {
			vectors = append(vectors, f.Vector(flow.DefaultWeights))
		}
	}
	if len(vectors) == 0 {
		b.Fatal("no vectors")
	}
	store := cluster.NewStore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.Match(vectors[i%len(vectors)])
	}
}

// BenchmarkStoreMatch measures the cluster store's Match path in its three
// regimes over the Web trace's real short-flow vector population:
//
//   - hit: a memoized store resolving vectors it has already seen. This is
//     the steady state of serial compression and the merge replay, and it
//     must stay at 0 allocs/op — CI gates on that.
//   - scan: the pruned first-fit walk with no memo, the cold path.
//   - miss: every Match creates a template (all-distinct vectors), the
//     worst case.
func BenchmarkStoreMatch(b *testing.B) {
	b.ReportAllocs()
	flows := flow.Assemble(sharedTrace().Packets)
	vectors := make([]flow.Vector, 0, len(flows))
	for _, f := range flows {
		if f.Len() <= 50 {
			vectors = append(vectors, f.Vector(flow.DefaultWeights))
		}
	}
	if len(vectors) == 0 {
		b.Fatal("no vectors")
	}

	b.Run("hit", func(b *testing.B) {
		b.ReportAllocs()
		store := cluster.NewStore().EnableMemo()
		for _, v := range vectors {
			store.Match(v)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			store.Match(vectors[i%len(vectors)])
		}
	})

	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		store := cluster.NewStore()
		for _, v := range vectors {
			store.Match(v)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			store.Match(vectors[i%len(vectors)])
		}
	})

	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		store := cluster.NewStore()
		// Distinct 5-byte vectors pairwise >= 5 apart (base-50 digits of i,
		// each scaled by 5), so with d_lim(5) = 5 and the strict < rule
		// every Match scans its whole bucket and then creates. The digit
		// space holds 50^5 ≈ 312M distinct vectors, far beyond any
		// reachable b.N, so the all-miss property cannot wrap away.
		v := make(flow.Vector, 5)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := i
			for j := range v {
				v[j] = uint8(n % 50 * 5)
				n /= 50
			}
			store.Match(v)
		}
	})
}

// BenchmarkDistanceWithin measures the early-exit distance kernel across
// vector lengths spanning the scalar path (below one word), the cache-resident
// sweet spot and streaming sizes. The candidate differs from the probe by one
// element near the end, so the kernel walks essentially the whole vector —
// the adversarial dense-bucket case the SWAR kernels exist for.
func BenchmarkDistanceWithin(b *testing.B) {
	for _, n := range []int{8, 64, 512, 4096} {
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			x := make(flow.Vector, n)
			y := make(flow.Vector, n)
			for i := range x {
				x[i] = uint8(i*37 + 11)
				y[i] = x[i]
			}
			y[n-1] ^= 0x55
			lim := int(y[n-1]^x[n-1]) + 1 // strictly above the true distance
			b.SetBytes(int64(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !flow.DistanceWithin(x, y, lim) {
					b.Fatal("kernel rejected the in-limit pair")
				}
			}
		})
	}
}

// BenchmarkStoreMatchBatch measures MatchBatch over the Web trace's real
// short-flow vectors in finalize-order batches (the compressor's shape),
// against a warm store so the walk-versus-memo mix matches steady state.
// Reported per op: one whole batch.
func BenchmarkStoreMatchBatch(b *testing.B) {
	flows := flow.Assemble(sharedTrace().Packets)
	vectors := make([]flow.Vector, 0, len(flows))
	for _, f := range flows {
		if f.Len() <= 50 {
			vectors = append(vectors, f.Vector(flow.DefaultWeights))
		}
	}
	if len(vectors) == 0 {
		b.Fatal("no vectors")
	}
	const batch = 64
	for _, memo := range []struct {
		name string
		on   bool
	}{{"memo", true}, {"scan", false}} {
		b.Run(memo.name, func(b *testing.B) {
			b.ReportAllocs()
			store := cluster.NewStore()
			if memo.on {
				store.EnableMemo()
			}
			for _, v := range vectors {
				store.Match(v)
			}
			n := batch
			if n > len(vectors) {
				n = len(vectors)
			}
			tpls := make([]*cluster.Template, n)
			created := make([]bool, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := i * n % len(vectors)
				if start+n > len(vectors) {
					start = 0
				}
				store.MatchBatch(vectors[start:start+n], tpls, created)
			}
		})
	}
}

// BenchmarkWebGeneration measures the synthetic trace generator.
func BenchmarkWebGeneration(b *testing.B) {
	b.ReportAllocs()
	cfg := flowzip.DefaultWebConfig()
	cfg.Flows = 1000
	cfg.Duration = 5 * time.Second
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		tr := flowzip.GenerateWeb(cfg)
		if tr.Len() == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkRouteKernel measures the full per-packet measurement path
// (checkpoint + instrumented lookup + cache).
func BenchmarkRouteKernel(b *testing.B) {
	b.ReportAllocs()
	tr := sharedTrace()
	routes := netbench.CoveringTable(tr, 5, 10000, 1)
	rec := memsim.NewRecorder(memsim.MustCache(memsim.DefaultCacheConfig()))
	k, err := netbench.NewRoute(routes, rec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.BeginPacket()
		k.Process(&tr.Packets[i%tr.Len()])
		rec.EndPacket()
	}
}
