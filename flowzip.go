// Package flowzip is a lossy packet-trace compressor based on TCP flow
// clustering, reproducing Holanda, Verdú, García and Valero, "Performance
// Analysis of a New Packet Trace Compressor based on TCP Flow Clustering"
// (ISPASS 2005).
//
// The compressor reduces TCP/IP header traces to a few percent of their
// original size by exploiting the similarity of Web flows: each flow maps
// to a small integer vector (TCP flag class, acknowledgment dependence and
// payload-size class per packet, weighted 16/4/1), similar vectors share a
// cluster template, and the compressed file stores four datasets —
// short-flow templates, long-flow templates, unique destination addresses
// and a per-flow time-seq index. Decompression regenerates a synthetic
// trace preserving the statistical properties that matter for
// memory-system studies of network code.
//
// Quick start:
//
//	tr := flowzip.GenerateWeb(flowzip.DefaultWebConfig())
//	archive, err := flowzip.Compress(tr, flowzip.DefaultOptions())
//	// ... persist with archive.Encode, inspect archive.Ratio() ...
//	back, err := flowzip.Decompress(archive)
//
// For multi-million-packet traces, CompressParallel shards the pipeline
// across CPU cores. Packets are partitioned by 5-tuple hash so every flow is
// assembled by exactly one shard, each shard runs an independent flow table
// and template store, and a deterministic merge re-clusters the shard
// results into one archive. The output is byte-for-byte identical to the
// serial Compress — same datasets, same template numbering, same Ratio —
// so the two are interchangeable:
//
//	archive, err := flowzip.CompressParallel(tr, flowzip.DefaultOptions(), 0)
//	// workers <= 0 means one shard per CPU; workers == 1 is the serial path
//
// The subsystems behind the facade live in internal/ (see DESIGN.md for the
// map); the cmd/ binaries and examples/ directory show complete pipelines,
// including the paper's figure reproductions.
package flowzip

import (
	"io"

	"flowzip/internal/baseline"
	"flowzip/internal/core"
	"flowzip/internal/flow"
	"flowzip/internal/flowgen"
	"flowzip/internal/pkt"
	"flowzip/internal/trace"
)

// Re-exported core types. The aliases make the internal implementation
// importable through the public package.
type (
	// Trace is an in-memory packet trace.
	Trace = trace.Trace
	// Packet is one TCP/IP header record.
	Packet = pkt.Packet
	// FiveTuple identifies one direction of a conversation.
	FiveTuple = pkt.FiveTuple
	// Archive is a compressed trace (the paper's four datasets).
	Archive = core.Archive
	// Options tunes the codec.
	Options = core.Options
	// CompressStats counts compressor activity.
	CompressStats = core.CompressStats
	// Weights are the characterization-mapping weights (w1, w2, w3).
	Weights = flow.Weights
	// WebConfig parameterizes the synthetic Web-traffic generator.
	WebConfig = flowgen.WebConfig
	// FractalConfig parameterizes the fractal (LRU-stack) generator.
	FractalConfig = flowgen.FractalConfig
	// TraceStats summarizes a trace.
	TraceStats = trace.Stats
	// Compressor is the streaming compression pipeline.
	Compressor = core.Compressor
	// Method is a compression scheme under comparison (baselines).
	Method = baseline.Method
)

// DefaultOptions returns the paper's codec parameters
// (weights 16/4/1, short flows up to 50 packets, 2% similarity threshold).
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultWebConfig returns a Web-traffic model calibrated to the paper's
// trace statistics.
func DefaultWebConfig() WebConfig { return flowgen.DefaultWebConfig() }

// DefaultFractalConfig returns the fracexp generator defaults.
func DefaultFractalConfig() FractalConfig { return flowgen.DefaultFractalConfig() }

// P2PConfig parameterizes the peer-to-peer generator (the paper's
// future-work workload).
type P2PConfig = flowgen.P2PConfig

// DefaultP2PConfig returns the P2P generator defaults.
func DefaultP2PConfig() P2PConfig { return flowgen.DefaultP2PConfig() }

// GenerateP2P produces a synthetic peer-to-peer header trace.
func GenerateP2P(cfg P2PConfig) *Trace { return flowgen.P2P(cfg) }

// SynthConfig parameterizes trace synthesis from an archive.
type SynthConfig = core.SynthConfig

// Synthesize generates a brand-new trace from an archive's traffic model —
// the paper's future-work "synthetic packet trace generator based on the
// described methodology".
func Synthesize(a *Archive, cfg SynthConfig) (*Trace, error) { return core.Synthesize(a, cfg) }

// LoadDatasets reads an archive stored as the paper's four-dataset layout.
func LoadDatasets(dir string) (*Archive, error) { return core.LoadDatasets(dir) }

// GenerateWeb produces a synthetic Web header trace.
func GenerateWeb(cfg WebConfig) *Trace { return flowgen.Web(cfg) }

// GenerateFractal produces the multiplicative-process/LRU-stack trace.
func GenerateFractal(cfg FractalConfig) *Trace { return flowgen.Fractal(cfg) }

// RandomizeAddresses derives the random-destination variant of a trace.
func RandomizeAddresses(tr *Trace, seed uint64) *Trace {
	return flowgen.RandomizeAddresses(tr, seed)
}

// Compress runs the flow-clustering compressor over a timestamp-sorted
// trace.
func Compress(tr *Trace, opts Options) (*Archive, error) { return core.Compress(tr, opts) }

// CompressParallel runs the compressor sharded across workers goroutines,
// partitioning packets by 5-tuple hash and deterministically merging the
// per-shard results. The archive is byte-for-byte identical to the serial
// Compress output. workers <= 0 uses one shard per CPU; workers == 1 is the
// serial path.
func CompressParallel(tr *Trace, opts Options, workers int) (*Archive, error) {
	return core.CompressParallel(tr, opts, workers)
}

// NewCompressor returns a streaming compressor for packet-at-a-time use.
func NewCompressor(opts Options) (*Compressor, error) { return core.NewCompressor(opts) }

// Decompress regenerates a synthetic trace from an archive.
func Decompress(a *Archive) (*Trace, error) { return core.Decompress(a) }

// DecodeArchive parses a compressed archive from r.
func DecodeArchive(r io.Reader) (*Archive, error) { return core.Decode(r) }

// LoadTrace reads a trace file (TSH or pcap, by extension).
func LoadTrace(path string) (*Trace, error) { return trace.LoadFile(path) }

// NewTrace returns an empty named trace.
func NewTrace(name string) *Trace { return trace.New(name) }

// Baselines returns the paper's comparison methods in Figure 1 order:
// Original, GZIP, VJ, Peuhkuri, Proposed.
func Baselines() []Method { return baseline.All() }

// BaselineRatio measures a method's compression ratio on a trace.
func BaselineRatio(m Method, tr *Trace) (float64, error) { return baseline.Ratio(m, tr) }
