package flowzip

import (
	"io"
	"net/http"

	"flowzip/internal/baseline"
	"flowzip/internal/core"
	"flowzip/internal/dist"
	"flowzip/internal/flow"
	"flowzip/internal/flowgen"
	"flowzip/internal/obs"
	"flowzip/internal/pcap"
	"flowzip/internal/pkt"
	"flowzip/internal/server"
	"flowzip/internal/trace"
)

// Re-exported core types. The aliases make the internal implementation
// importable through the public package.
type (
	// Trace is an in-memory packet trace.
	Trace = trace.Trace
	// Packet is one TCP/IP header record.
	Packet = pkt.Packet
	// FiveTuple identifies one direction of a conversation.
	FiveTuple = pkt.FiveTuple
	// Archive is a compressed trace (the paper's four datasets).
	Archive = core.Archive
	// Options tunes the codec.
	Options = core.Options
	// CompressStats counts compressor activity.
	CompressStats = core.CompressStats
	// Weights are the characterization-mapping weights (w1, w2, w3).
	Weights = flow.Weights
	// WebConfig parameterizes the synthetic Web-traffic generator.
	WebConfig = flowgen.WebConfig
	// FractalConfig parameterizes the fractal (LRU-stack) generator.
	FractalConfig = flowgen.FractalConfig
	// TraceStats summarizes a trace.
	TraceStats = trace.Stats
	// Compressor is the streaming compression pipeline.
	Compressor = core.Compressor
	// Method is a compression scheme under comparison (baselines).
	Method = baseline.Method
	// PacketSource is a pull-based packet stream — the input seam of
	// CompressStream. Implementations: TraceSource, OpenPcap, StreamWeb.
	PacketSource = core.PacketSource
	// StreamConfig tunes CompressStreamConfig (workers, residency window,
	// progress reporting, shared templates).
	StreamConfig = core.StreamConfig
	// ParallelConfig tunes CompressParallelConfig (workers, shared
	// templates, pipeline statistics).
	ParallelConfig = core.ParallelConfig
	// ParallelStats reports what a sharded compression run actually did —
	// worker count after clamping, merge Match calls, shared-snapshot
	// traffic.
	ParallelStats = core.ParallelStats
	// TooManyPacketsError reports a trace beyond CompressParallel's int32
	// packet-index bound; streams that large go through CompressStream.
	TooManyPacketsError = core.TooManyPacketsError
	// PcapSource streams a pcap capture file in bounded batches.
	PcapSource = pcap.Source
	// WebSource streams the synthetic Web generator in bounded memory.
	WebSource = flowgen.WebSource
	// ShardResult is one partition's compression output — the serializable
	// unit of the distributed pipeline.
	ShardResult = core.ShardResult
	// Coordinator collects shard state from TCP workers and merges it.
	Coordinator = dist.Coordinator
	// CoordinatorConfig parameterizes a merge coordinator.
	CoordinatorConfig = dist.CoordinatorConfig
	// Worker pulls partition assignments from a coordinator over TCP.
	Worker = dist.Worker
	// WorkerConfig parameterizes a compression worker.
	WorkerConfig = dist.WorkerConfig
	// ShardHeader is the decoded fixed header of serialized shard state.
	ShardHeader = dist.ShardHeader
	// Config is the unified pipeline configuration consumed by New: one
	// worker count, one residency window, one shared-template switch, one
	// stats sink, interpreted identically by every input shape.
	Config = core.PipelineConfig
	// Pipeline is the unified compression entry point returned by New.
	Pipeline = core.Pipeline
	// NetConfig is the shared connection-timing configuration of every
	// framed-TCP endpoint: coordinator, worker and daemon take the same
	// three knobs (frame timeout, result timeout, retries).
	NetConfig = dist.NetConfig
	// SessionSummary is what one daemon ingestion session produced.
	SessionSummary = dist.SessionSummary
	// Daemon is flowzipd: the long-lived multi-tenant ingestion daemon.
	Daemon = server.Daemon
	// DaemonConfig parameterizes a Daemon (listener, archive root, quotas,
	// rotation, metrics endpoint).
	DaemonConfig = server.Config
	// Quotas bounds what daemon tenants may consume.
	Quotas = server.Quotas
	// Rotation cuts daemon sessions into archive segments.
	Rotation = server.Rotation
	// SegmentMeta is the JSON sidecar written next to each daemon archive
	// segment.
	SegmentMeta = server.SegmentMeta
	// DaemonMetrics is the daemon's counter set (rendered on /metrics).
	DaemonMetrics = server.Metrics
	// IngestClient is one capture stream into a daemon.
	IngestClient = server.Client
	// IndexConfig selects the indexed (v2) archive container: the same
	// body plus a footer index enabling the OpenArchive read path.
	IndexConfig = core.IndexConfig
	// Reader is the indexed read path: it opens a v2 archive through an
	// io.ReaderAt without loading the body and serves selective
	// (ExtractFlows) and parallel (DecompressParallel) decodes.
	Reader = core.Reader
	// FlowFilter selects flows by server-address prefix and/or start-time
	// window for Reader.ExtractFlows.
	FlowFilter = core.FlowFilter
	// ReaderStats counts the bytes and sections a Reader actually read.
	ReaderStats = core.ReaderStats
	// IndexStats describes the footer index of an open archive.
	IndexStats = core.IndexStats
	// Registry holds named metric instruments and renders them in the
	// Prometheus text exposition format. A nil *Registry disables every
	// instrument it would have produced.
	Registry = obs.Registry
	// Tracer records spans and renders them as Chrome trace-event JSON,
	// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. A nil
	// *Tracer disables every span with one branch per call.
	Tracer = obs.Tracer
	// Span is one in-progress trace span (a value; End records it).
	Span = obs.Span
	// PipelineMetrics is the compression pipeline's metric set; attach it
	// through Config.Metrics and register it with NewPipelineMetrics.
	PipelineMetrics = core.PipelineMetrics
	// ReaderMetrics is the indexed read path's metric set; attach it with
	// Reader.Observe and register it with NewReaderMetrics.
	ReaderMetrics = core.ReaderMetrics
)

// ErrNoIndex reports a v1 archive opened through the indexed read path;
// decode it with DecodeArchive instead.
var ErrNoIndex = core.ErrNoIndex

// ErrBadIndex reports a corrupt or inconsistent archive footer index.
var ErrBadIndex = core.ErrBadIndex

// DefaultIndexGroupSize is the default flow-group granularity of the
// archive footer index.
const DefaultIndexGroupSize = core.DefaultIndexGroupSize

// ErrSessionDrained reports that a daemon finalized an ingestion session
// early during graceful shutdown; everything acked was flushed to archives.
var ErrSessionDrained = server.ErrSessionDrained

// DefaultMaxResident is CompressStream's default bound on packets resident
// in the pipeline.
const DefaultMaxResident = core.DefaultMaxResident

// DefaultOptions returns the paper's codec parameters
// (weights 16/4/1, short flows up to 50 packets, 2% similarity threshold).
func DefaultOptions() Options { return core.DefaultOptions() }

// NewRegistry returns an empty metrics registry. Serve it over HTTP with
// MetricsHandler, or render it with Registry.Render.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewTracer returns a tracer whose spans render as Chrome trace-event
// JSON under the given process name. Write the result with Tracer.Write
// or Tracer.WriteFile after the traced work completes.
func NewTracer(process string) *Tracer { return obs.NewTracer(process) }

// NewPipelineMetrics registers the compression pipeline's metric series
// on reg under the given prefix (e.g. "pipeline") and returns the set to
// attach through Config.Metrics. A nil registry returns nil, which
// disables every observation site at one branch per call.
func NewPipelineMetrics(reg *Registry, prefix string) *PipelineMetrics {
	return core.NewPipelineMetrics(reg, prefix)
}

// NewReaderMetrics registers the indexed read path's metric series on reg
// under the given prefix and returns the set to attach with
// Reader.Observe. A nil registry returns nil.
func NewReaderMetrics(reg *Registry, prefix string) *ReaderMetrics {
	return core.NewReaderMetrics(reg, prefix)
}

// MetricsHandler serves reg in the Prometheus text exposition format.
func MetricsHandler(reg *Registry) http.Handler { return obs.Handler(reg) }

// DefaultWebConfig returns a Web-traffic model calibrated to the paper's
// trace statistics.
func DefaultWebConfig() WebConfig { return flowgen.DefaultWebConfig() }

// DefaultFractalConfig returns the fracexp generator defaults.
func DefaultFractalConfig() FractalConfig { return flowgen.DefaultFractalConfig() }

// P2PConfig parameterizes the peer-to-peer generator (the paper's
// future-work workload).
type P2PConfig = flowgen.P2PConfig

// DefaultP2PConfig returns the P2P generator defaults.
func DefaultP2PConfig() P2PConfig { return flowgen.DefaultP2PConfig() }

// GenerateP2P produces a synthetic peer-to-peer header trace.
func GenerateP2P(cfg P2PConfig) *Trace { return flowgen.P2P(cfg) }

// SynthConfig parameterizes trace synthesis from an archive.
type SynthConfig = core.SynthConfig

// Synthesize generates a brand-new trace from an archive's traffic model —
// the paper's future-work "synthetic packet trace generator based on the
// described methodology".
func Synthesize(a *Archive, cfg SynthConfig) (*Trace, error) { return core.Synthesize(a, cfg) }

// LoadDatasets reads an archive stored as the paper's four-dataset layout.
func LoadDatasets(dir string) (*Archive, error) { return core.LoadDatasets(dir) }

// GenerateWeb produces a synthetic Web header trace.
func GenerateWeb(cfg WebConfig) *Trace { return flowgen.Web(cfg) }

// GenerateFractal produces the multiplicative-process/LRU-stack trace.
func GenerateFractal(cfg FractalConfig) *Trace { return flowgen.Fractal(cfg) }

// RandomizeAddresses derives the random-destination variant of a trace.
func RandomizeAddresses(tr *Trace, seed uint64) *Trace {
	return flowgen.RandomizeAddresses(tr, seed)
}

// New validates opts and cfg and returns the unified compression Pipeline —
// the single entry point behind which every legacy Compress* function now
// sits. Pipeline.Compress streams any PacketSource in bounded memory;
// Pipeline.CompressTrace runs the in-memory sharded pipeline. Both produce
// archives byte-for-byte identical to serial Compress over the same packets.
// Unlike the legacy wrappers, New is strict: out-of-range worker counts or
// windows are errors, never silent clamps.
func New(opts Options, cfg Config) (*Pipeline, error) { return core.NewPipeline(opts, cfg) }

// Compress runs the flow-clustering compressor over a timestamp-sorted
// trace — the serial reference path every other pipeline must reproduce byte
// for byte.
func Compress(tr *Trace, opts Options) (*Archive, error) { return core.Compress(tr, opts) }

// CompressParallel runs the compressor sharded across workers goroutines,
// partitioning packets by 5-tuple hash and deterministically merging the
// per-shard results. The archive is byte-for-byte identical to the serial
// Compress output. workers <= 0 uses one shard per CPU; workers == 1 is the
// serial path; counts beyond 256 shards are clamped.
//
// CompressParallel is a compatibility wrapper over New: it normalizes the
// worker count and delegates to Pipeline.CompressTrace.
func CompressParallel(tr *Trace, opts Options, workers int) (*Archive, error) {
	return core.CompressParallel(tr, opts, workers)
}

// CompressParallelConfig is CompressParallel with shared-template control
// and pipeline statistics: with SharedTemplates on, shard workers consult
// one global template snapshot before their private overflow stores, so the
// merge replay re-clusters only overflow flows plus each shared vector's
// first occurrence — same archive bytes, measurably less merge work
// (observable through ParallelStats).
//
// It is a compatibility wrapper over New, preserving the forgiving legacy
// clamping; new code should construct a Pipeline directly.
func CompressParallelConfig(tr *Trace, opts Options, cfg ParallelConfig) (*Archive, error) {
	return core.CompressParallelConfig(tr, opts, cfg)
}

// CompressStream compresses a packet stream without materializing it:
// batches from src are partitioned by 5-tuple hash and fed to the shard
// workers through bounded channels with backpressure, so resident packets
// stay bounded by the window (DefaultMaxResident here) rather than the
// stream length. The archive is byte-for-byte identical to the serial
// Compress over the same packets. Packets must arrive in timestamp order;
// workers <= 0 uses one shard per CPU.
//
// CompressStream is a compatibility wrapper over New: it normalizes the
// worker count and delegates to Pipeline.Compress.
func CompressStream(src PacketSource, opts Options, workers int) (*Archive, error) {
	return core.CompressStream(src, opts, workers)
}

// CompressStreamConfig is CompressStream with an explicit residency window
// and progress reporting. It is a compatibility wrapper over New, preserving
// the forgiving legacy clamping; new code should construct a Pipeline
// directly.
func CompressStreamConfig(src PacketSource, opts Options, cfg StreamConfig) (*Archive, error) {
	return core.CompressStreamConfig(src, opts, cfg)
}

// NewDaemon starts flowzipd: the long-lived ingestion daemon accepting many
// concurrent capture sessions, compressing each through its own bounded
// pipeline into per-tenant archive directories with rotation, quotas and a
// Prometheus metrics endpoint. End with Daemon.Shutdown (graceful drain) or
// Daemon.Close.
func NewDaemon(cfg DaemonConfig) (*Daemon, error) { return server.New(cfg) }

// DialDaemon opens one capture session into a running daemon. Each
// IngestClient.Send blocks until the daemon acks, so daemon backpressure
// reaches the capture point.
func DialDaemon(addr, tenant string, opts Options, nc NetConfig) (*IngestClient, error) {
	return server.DialSession(addr, tenant, opts, nc)
}

// Ingest streams every batch of src into a daemon session under tenant and
// returns the daemon's summary. A daemon draining mid-stream surfaces as
// ErrSessionDrained alongside the summary of what was flushed.
func Ingest(addr, tenant string, src PacketSource, opts Options, nc NetConfig) (SessionSummary, error) {
	return server.Ingest(addr, tenant, src, opts, nc)
}

// ReadSegmentMeta loads the JSON sidecar of a daemon archive segment; path
// may name the sidecar or the archive itself.
func ReadSegmentMeta(path string) (*SegmentMeta, error) { return server.ReadSegmentMeta(path) }

// CompressShard compresses partition shard of shards over the full stream
// src: every packet is scanned (for global ordering), but only the flows
// whose 5-tuple hashes into the partition are compressed. The result is the
// serializable unit of the distributed pipeline — write it with
// EncodeShardState, ship it anywhere, and merge a complete set with
// MergeShards.
func CompressShard(src PacketSource, opts Options, shard, shards int) (*ShardResult, error) {
	return core.CompressShardSource(src, opts, shard, shards)
}

// MergeShards validates a complete set of shard results and replays the
// deterministic merge: the archive is byte-for-byte identical to serial
// Compress over the same stream, no matter which machines produced the
// shards.
func MergeShards(results []*ShardResult) (*Archive, error) {
	return core.MergeShardResults(results)
}

// EncodeShardState serializes one shard result in the versioned .fzshard
// wire format (magic, shard index/count, partition seed, options
// fingerprint, then templates and flows, CRC-protected).
func EncodeShardState(w io.Writer, r *ShardResult) error { return dist.EncodeShardState(w, r) }

// DecodeShardState parses and fully validates serialized shard state,
// rejecting truncated or corrupt blobs and incompatible format versions.
func DecodeShardState(r io.Reader) (*ShardResult, error) { return dist.DecodeShardState(r) }

// ReadShardHeader decodes only the header of serialized shard state —
// shard identity, counts and the options fingerprint.
func ReadShardHeader(r io.Reader) (*ShardHeader, error) { return dist.ReadShardHeader(r) }

// MergeShardFiles decodes .fzshard files and merges them into an archive.
func MergeShardFiles(paths []string) (*Archive, error) { return dist.MergeShardFiles(paths) }

// NewCoordinator starts a TCP merge coordinator: it accepts workers, hands
// out partition assignments, re-queues the shards of dead workers and —
// via (*Coordinator).Wait — merges the complete set into an archive
// byte-identical to serial Compress.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) { return dist.NewCoordinator(cfg) }

// DialCoordinator connects a worker to a coordinator; (*Worker).Run then
// serves partition assignments until the coordinator reports completion.
func DialCoordinator(addr string, cfg WorkerConfig) (*Worker, error) { return dist.Dial(addr, cfg) }

// CompressDistributed runs the distributed pipeline — a loopback TCP
// coordinator plus concurrent workers, each pulling a fresh stream from
// newSource — and returns an archive byte-for-byte identical to serial
// Compress. shards is the partition count; workers <= 0 uses one worker
// per shard.
func CompressDistributed(newSource func() (PacketSource, error), opts Options, shards, workers int) (*Archive, error) {
	return dist.CompressDistributed(newSource, opts, shards, workers)
}

// OpenPcap opens a capture file as a bounded-memory PacketSource for
// CompressStream. Close the source when done.
func OpenPcap(path string) (*PcapSource, error) { return pcap.Open(path, 0) }

// TraceSource streams an in-memory trace in batches of the given size
// (<= 0 selects a default); the trace must not be mutated while in use.
func TraceSource(tr *Trace, batch int) PacketSource { return trace.Batches(tr, batch) }

// StreamWeb returns a bounded-memory streaming variant of GenerateWeb: the
// emitted packet sequence is identical, but only the conversations
// overlapping in time are resident. batch <= 0 selects a default.
func StreamWeb(cfg WebConfig, batch int) *WebSource { return flowgen.NewWebSource(cfg, batch) }

// NewCompressor returns a streaming compressor for packet-at-a-time use.
func NewCompressor(opts Options) (*Compressor, error) { return core.NewCompressor(opts) }

// Decompress regenerates a synthetic trace from an archive.
func Decompress(a *Archive) (*Trace, error) { return core.Decompress(a) }

// DecompressParallel regenerates the trace with workers concurrent decoders
// (0 means one per CPU), packet-for-packet identical to Decompress: the
// time-seq records are split into contiguous ranges balanced by packet
// count, each range merges independently, and a deterministic final merge
// reproduces the serial (timestamp, record) order exactly.
func DecompressParallel(a *Archive, workers int) (*Trace, error) {
	return core.DecompressParallel(a, workers)
}

// DecodeArchive parses a compressed archive from r.
func DecodeArchive(r io.Reader) (*Archive, error) { return core.Decode(r) }

// OpenArchive opens an indexed (v2) archive of the given size through src,
// reading only the header, address dataset and footer index — the flow body
// stays on storage until a query touches it. A v1 archive returns
// ErrNoIndex; a corrupt footer returns ErrBadIndex.
func OpenArchive(src io.ReaderAt, size int64) (*Reader, error) {
	return core.OpenReader(src, size)
}

// OpenArchiveFile opens an indexed archive file; Reader.Close releases it.
func OpenArchiveFile(path string) (*Reader, error) { return core.OpenReaderFile(path) }

// ExtractFlows is the one-call selective decode over an indexed archive:
// only the flows matching the filter are decoded, reading just the flow
// groups and templates the footer index maps to them. The returned packets
// are exactly the matching flows' packets of the full Decompress output, in
// the same order.
func ExtractFlows(src io.ReaderAt, size int64, f FlowFilter) (*Trace, error) {
	return core.ExtractFlows(src, size, f)
}

// LoadTrace reads a trace file (TSH or pcap, by extension).
func LoadTrace(path string) (*Trace, error) { return trace.LoadFile(path) }

// NewTrace returns an empty named trace.
func NewTrace(name string) *Trace { return trace.New(name) }

// Baselines returns the paper's comparison methods in Figure 1 order:
// Original, GZIP, VJ, Peuhkuri, Proposed.
func Baselines() []Method { return baseline.All() }

// BaselineRatio measures a method's compression ratio on a trace.
func BaselineRatio(m Method, tr *Trace) (float64, error) { return baseline.Ratio(m, tr) }
