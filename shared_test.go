package flowzip_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"flowzip"
)

// generatorTraces builds one modest trace per synthetic workload — Web,
// Fractal and P2P — so the shared-template property is checked against every
// traffic model the paper and its future-work section define, not just the
// template-heavy Web mix.
func generatorTraces(t *testing.T) map[string]*flowzip.Trace {
	t.Helper()
	web := flowzip.DefaultWebConfig()
	web.Seed = 2
	web.Flows = 900
	web.Duration = 10 * time.Second

	frac := flowzip.DefaultFractalConfig()
	frac.Seed = 5
	frac.Packets = 15000

	p2p := flowzip.DefaultP2PConfig()
	p2p.Seed = 8
	p2p.Flows = 700
	p2p.Peers = 60
	p2p.Duration = 8 * time.Second

	traces := map[string]*flowzip.Trace{
		"web":     flowzip.GenerateWeb(web),
		"fractal": flowzip.GenerateFractal(frac),
		"p2p":     flowzip.GenerateP2P(p2p),
	}
	for name, tr := range traces {
		if !tr.IsSorted() {
			tr.Sort()
		}
		if tr.Len() == 0 {
			t.Fatalf("%s generator produced an empty trace", name)
		}
	}
	return traces
}

func archiveBytes(t *testing.T, a *flowzip.Archive) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSharedTemplatesEquivalence is the tentpole acceptance property over
// the public API: with SharedTemplates on, the parallel and streaming
// pipelines must produce archives byte-for-byte identical to serial
// Compress for Web, Fractal and P2P traffic at 1, 2, 4 and 8 workers. Run
// under -race this also exercises the snapshot publication for data races.
func TestSharedTemplatesEquivalence(t *testing.T) {
	for name, tr := range generatorTraces(t) {
		t.Run(name, func(t *testing.T) {
			serial, err := flowzip.Compress(tr, flowzip.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			want := archiveBytes(t, serial)
			for _, workers := range []int{1, 2, 4, 8} {
				t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
					var pst flowzip.ParallelStats
					par, err := flowzip.CompressParallelConfig(tr, flowzip.DefaultOptions(),
						flowzip.ParallelConfig{Workers: workers, SharedTemplates: true, Stats: &pst})
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(want, archiveBytes(t, par)) {
						t.Error("shared parallel archive differs from serial")
					}

					var sst flowzip.ParallelStats
					arch, err := flowzip.CompressStreamConfig(flowzip.TraceSource(tr, 777),
						flowzip.DefaultOptions(),
						flowzip.StreamConfig{Workers: workers, SharedTemplates: true, Stats: &sst})
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(want, archiveBytes(t, arch)) {
						t.Error("shared streaming archive differs from serial")
					}
					if sst.SharedLookups == 0 {
						t.Error("streaming pipeline never consulted the shared store")
					}
				})
			}
		})
	}
}

// TestSharedTemplatesStatsSplit checks the public stats contract: the
// shared/overflow split covers exactly the short flows, and the snapshot
// absorbs Match traffic on the template-heavy Web workload.
func TestSharedTemplatesStatsSplit(t *testing.T) {
	cfg := flowzip.DefaultWebConfig()
	cfg.Seed = 3
	cfg.Flows = 1200
	cfg.Duration = 10 * time.Second
	tr := flowzip.GenerateWeb(cfg)

	var plain, shared flowzip.ParallelStats
	if _, err := flowzip.CompressParallelConfig(tr, flowzip.DefaultOptions(),
		flowzip.ParallelConfig{Workers: 4, Stats: &plain}); err != nil {
		t.Fatal(err)
	}
	if _, err := flowzip.CompressParallelConfig(tr, flowzip.DefaultOptions(),
		flowzip.ParallelConfig{Workers: 4, SharedTemplates: true, Stats: &shared}); err != nil {
		t.Fatal(err)
	}
	if got := shared.SharedFlows + shared.OverflowFlows; got != plain.OverflowFlows {
		t.Errorf("shared %d + overflow %d = %d flows, want the %d short flows",
			shared.SharedFlows, shared.OverflowFlows, got, plain.OverflowFlows)
	}
	if shared.SharedFlows == 0 {
		t.Error("no snapshot hits on a template-heavy Web trace")
	}
	if shared.MergeMatchCalls >= plain.MergeMatchCalls {
		t.Errorf("merge Match calls did not drop: %d shared vs %d plain",
			shared.MergeMatchCalls, plain.MergeMatchCalls)
	}
}
