// Quickstart: generate a synthetic Web trace, compress it with the
// flow-clustering codec, persist the archive, decompress it back and verify
// the statistical invariants the paper promises.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"time"

	"flowzip"
)

func main() {
	log.SetFlags(0)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments %q: this example is configured by editing its source", flag.Args())
	}

	// 1. Generate a Web header trace (the stand-in for a captured TSH file).
	cfg := flowzip.DefaultWebConfig()
	cfg.Seed = 42
	cfg.Flows = 5000
	cfg.Duration = 30 * time.Second
	tr := flowzip.GenerateWeb(cfg)
	fmt.Printf("original trace: %s\n", tr.ComputeStats())

	// 2. Compress with the paper's parameters (weights 16/4/1, short flows
	// up to 50 packets, 2%% similarity threshold).
	archive, err := flowzip.Compress(tr, flowzip.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	ratio, err := archive.Ratio()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed: %d flows, %d short templates, %d long templates, %d addresses\n",
		archive.Flows(), len(archive.ShortTemplates), len(archive.LongTemplates), len(archive.Addresses))
	fmt.Printf("compression ratio: %.2f%% of the TSH file (paper: ~3%%)\n", 100*ratio)

	// 3. The archive round-trips through its binary container format.
	var buf bytes.Buffer
	if _, err := archive.Encode(&buf); err != nil {
		log.Fatal(err)
	}
	loaded, err := flowzip.DecodeArchive(&buf)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Decompress: a synthetic trace with the same flow structure.
	back, err := flowzip.Decompress(loaded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decompressed trace: %s\n", back.ComputeStats())

	if back.Len() != tr.Len() {
		log.Fatalf("packet count changed: %d -> %d", tr.Len(), back.Len())
	}
	fmt.Println("packet count preserved: OK")
}
