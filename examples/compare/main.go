// Compare: run the paper's five compression methods (Figure 1) over growing
// prefixes of one trace and print the file-size curves plus the final ratio
// table — a miniature of the paper's headline evaluation.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"flowzip"
	"flowzip/internal/baseline"
	"flowzip/internal/stats"
)

func main() {
	log.SetFlags(0)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments %q: this example is configured by editing its source", flag.Args())
	}

	cfg := flowzip.DefaultWebConfig()
	cfg.Seed = 7
	cfg.Flows = 8000
	cfg.Duration = 60 * time.Second
	tr := flowzip.GenerateWeb(cfg)
	fmt.Printf("trace: %s\n\n", tr.ComputeStats())

	// File size vs elapsed time, like Figure 1.
	fig := &stats.Figure{
		Title:  "File size vs elapsed time (mini Figure 1)",
		XLabel: "elapsed (s)",
		YLabel: "size (KB)",
	}
	methods := flowzip.Baselines()
	series := make([][][2]float64, len(methods))
	const steps = 6
	for s := 1; s <= steps; s++ {
		elapsed := cfg.Duration * time.Duration(s) / steps
		slice := tr.Slice(0, elapsed)
		for i, m := range methods {
			sz, err := baseline.Size(m, slice)
			if err != nil {
				log.Fatalf("%s: %v", m.Name(), err)
			}
			series[i] = append(series[i], [2]float64{elapsed.Seconds(), float64(sz) / 1024})
		}
	}
	for i, m := range methods {
		fig.Add(m.Name(), series[i])
	}
	fig.Table().Render(os.Stdout)

	// Final ratios.
	fmt.Println()
	t := &stats.Table{Title: "final compression ratios", Headers: []string{"method", "ratio", "paper"}}
	paper := []string{"1.00", "~0.50", "~0.30", "~0.16", "~0.03"}
	for i, m := range methods {
		r, err := flowzip.BaselineRatio(m, tr)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(m.Name(), fmt.Sprintf("%.4f", r), paper[i])
	}
	t.Render(os.Stdout)
}
