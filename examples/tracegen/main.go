// Tracegen: generate each synthetic trace kind, write both on-disk formats
// (TSH and pcap), reload them and compare statistics — the trace substrate
// tour.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"flowzip"
	"flowzip/internal/stats"
)

func main() {
	log.SetFlags(0)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments %q: this example is configured by editing its source", flag.Args())
	}
	dir, err := os.MkdirTemp("", "flowzip-tracegen")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Web trace.
	web := flowzip.DefaultWebConfig()
	web.Seed = 3
	web.Flows = 2000
	web.Duration = 15 * time.Second
	tr := flowzip.GenerateWeb(web)

	// Variants.
	random := flowzip.RandomizeAddresses(tr, 1)
	fcfg := flowzip.DefaultFractalConfig()
	fcfg.Packets = tr.Len()
	fractal := flowzip.GenerateFractal(fcfg)

	t := &stats.Table{
		Title:   "generated traces",
		Headers: []string{"trace", "packets", "flows", "unique dst", "duration"},
	}
	for _, x := range []*flowzip.Trace{tr, random, fractal} {
		s := x.ComputeStats()
		t.AddRow(x.Name, fmt.Sprintf("%d", s.Packets), fmt.Sprintf("%d", s.Flows),
			fmt.Sprintf("%d", s.UniqueDst), s.Duration.Round(time.Millisecond).String())
	}
	t.Render(os.Stdout)
	fmt.Println()

	// Round-trip through both formats.
	ft := &stats.Table{
		Title:   "format round trips",
		Headers: []string{"file", "bytes", "packets", "match"},
	}
	for _, name := range []string{"web.tsh", "web.pcap"} {
		path := filepath.Join(dir, name)
		if err := tr.SaveFile(path); err != nil {
			log.Fatal(err)
		}
		info, err := os.Stat(path)
		if err != nil {
			log.Fatal(err)
		}
		back, err := flowzip.LoadTrace(path)
		if err != nil {
			log.Fatal(err)
		}
		match := "yes"
		if back.Len() != tr.Len() {
			match = "NO"
		} else {
			for i := range tr.Packets {
				if back.Packets[i] != tr.Packets[i] {
					match = "NO"
					break
				}
			}
		}
		ft.AddRow(name, fmt.Sprintf("%d", info.Size()), fmt.Sprintf("%d", back.Len()), match)
	}
	ft.Render(os.Stdout)
}
