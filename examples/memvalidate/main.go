// Memvalidate: the Section 6 validation pipeline in miniature. Build the
// four traces (original, decompressed, random-address, fractal), run the
// instrumented Route kernel over a covering forwarding table, and print the
// Figure 2 access summary and Figure 3 miss-rate buckets. The point to
// observe: original and decompressed track each other; random and fractal
// do not.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"flowzip"
	"flowzip/internal/memsim"
	"flowzip/internal/netbench"
	"flowzip/internal/stats"
	"flowzip/internal/trace"
)

func main() {
	log.SetFlags(0)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments %q: this example is configured by editing its source", flag.Args())
	}

	// Original trace.
	cfg := flowzip.DefaultWebConfig()
	cfg.Seed = 11
	cfg.Flows = 4000
	cfg.ClientNets = cfg.Flows // sparse clients: only servers are popular
	cfg.Duration = 20 * time.Second
	original := flowzip.GenerateWeb(cfg)
	original.Name = "original"

	// Decompressed trace via the codec.
	arch, err := flowzip.Compress(original, flowzip.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	decomp, err := flowzip.Decompress(arch)
	if err != nil {
		log.Fatal(err)
	}
	decomp.Name = "decomp"

	// Random-destination and fractal comparison traces.
	random := flowzip.RandomizeAddresses(original, 99)
	random.Name = "random"
	fcfg := flowzip.DefaultFractalConfig()
	fcfg.Packets = original.Len()
	fractal := flowzip.GenerateFractal(fcfg)
	fractal.Name = "fracexp"

	// Forwarding table covering the original trace's popular prefixes.
	routes := netbench.CoveringTable(original, 5, 20000, 1)
	fmt.Printf("forwarding table: %d routes\n\n", len(routes))

	accTbl := &stats.Table{
		Title:   "memory accesses per packet (mini Figure 2)",
		Headers: []string{"trace", "mean", "p50", "p90"},
	}
	missTbl := &stats.Table{
		Title:   "cache miss-rate buckets (mini Figure 3)",
		Headers: []string{"trace", "0-5%", "5-10%", "10-20%", ">20%"},
	}
	for _, tr := range []*trace.Trace{original, decomp, random, fractal} {
		cache := memsim.MustCache(memsim.DefaultCacheConfig())
		rec := memsim.NewRecorder(cache)
		kernel, err := netbench.NewRoute(routes, rec)
		if err != nil {
			log.Fatal(err)
		}
		res := netbench.Run(kernel, tr, rec)

		s := stats.Summarize(res.AccessCounts())
		accTbl.AddRow(tr.Name, fmt.Sprintf("%.1f", s.Mean),
			fmt.Sprintf("%.0f", s.P50), fmt.Sprintf("%.0f", s.P90))

		h := stats.NewHistogram([]float64{0, 0.05, 0.10, 0.20})
		for _, mr := range res.MissRates() {
			h.Add(mr)
		}
		row := []string{tr.Name}
		for i := 0; i < 4; i++ {
			row = append(row, fmt.Sprintf("%.1f%%", 100*h.Fraction(i)))
		}
		missTbl.Rows = append(missTbl.Rows, row)
	}
	accTbl.Render(os.Stdout)
	fmt.Println()
	missTbl.Render(os.Stdout)
	fmt.Println("\nexpect: decomp rows track original; random/fracexp diverge")
}
