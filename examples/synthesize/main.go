// Synthesize: use a compressed archive as a traffic model — the paper's
// future-work "synthetic packet trace generator based on the described
// methodology". Compress a small captured trace, then generate a 5x larger
// synthetic trace with the same template mix, address popularity and RTTs,
// and show that its statistical profile matches the source.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"flowzip"
	"flowzip/internal/flow"
	"flowzip/internal/stats"
)

func main() {
	log.SetFlags(0)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments %q: this example is configured by editing its source", flag.Args())
	}

	// The "captured" source trace.
	cfg := flowzip.DefaultWebConfig()
	cfg.Seed = 9
	cfg.Flows = 2000
	cfg.Duration = 15 * time.Second
	source := flowzip.GenerateWeb(cfg)

	// Compress it: the archive is now a compact traffic model (~5% of the
	// trace bytes).
	archive, err := flowzip.Compress(source, flowzip.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Generate a 5x larger trace from the model at 2x the offered load.
	synthCfg := flowzip.SynthConfig{Seed: 7, Flows: 10000, Scale: 2.0}
	synth, err := flowzip.Synthesize(archive, synthCfg)
	if err != nil {
		log.Fatal(err)
	}

	t := &stats.Table{
		Title:   "source vs synthesized",
		Headers: []string{"trace", "flows", "packets", "mean len", "flows<51pkt", "duration"},
	}
	for _, tr := range []*flowzip.Trace{source, synth} {
		flows := flow.Assemble(tr.Packets)
		d := flow.MeasureLengths(flows)
		t.AddRow(tr.Name,
			fmt.Sprintf("%d", len(flows)),
			fmt.Sprintf("%d", tr.Len()),
			fmt.Sprintf("%.2f", d.MeanLength()),
			fmt.Sprintf("%.1f%%", 100*d.FlowFracBelow(51)),
			tr.Duration().Round(time.Millisecond).String())
	}
	t.Render(os.Stdout)

	// The synthetic trace recompresses into (at most) the same template
	// library — it is drawn from the model.
	a2, err := flowzip.Compress(synth, flowzip.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntemplates: source archive %d, synthetic recompression %d\n",
		len(archive.ShortTemplates), len(a2.ShortTemplates))
}
