// Clustering: the Section 2.1 flow-diversity study. Characterize every Web
// flow as an F vector, cluster same-length vectors with the paper's
// threshold method and with k-means, and show how few clusters cover almost
// all flows.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"flowzip"
	"flowzip/internal/cluster"
	"flowzip/internal/flow"
	"flowzip/internal/stats"
)

func main() {
	log.SetFlags(0)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments %q: this example is configured by editing its source", flag.Args())
	}

	cfg := flowzip.DefaultWebConfig()
	cfg.Seed = 5
	cfg.Flows = 6000
	cfg.Duration = 30 * time.Second
	tr := flowzip.GenerateWeb(cfg)

	flows := flow.Assemble(tr.Packets)
	fmt.Printf("assembled %d flows from %d packets\n\n", len(flows), tr.Len())

	// Characterization vectors of short flows.
	w := flow.DefaultWeights
	var vectors []flow.Vector
	byLen := map[int][]flow.Vector{}
	for _, f := range flows {
		if f.Len() > 50 {
			continue
		}
		v := f.Vector(w)
		vectors = append(vectors, v)
		byLen[f.Len()] = append(byLen[f.Len()], v)
	}

	// Threshold clustering (the compressor's method).
	rep := cluster.Diversity(vectors)
	t := &stats.Table{Title: "threshold clustering (d_lim = n)", Headers: []string{"statistic", "value"}}
	t.AddRowf("short flows", rep.Flows)
	t.AddRowf("clusters", rep.Clusters)
	t.AddRow("flows per cluster", fmt.Sprintf("%.1f", rep.FlowsPerCenter))
	t.AddRow("largest cluster", fmt.Sprintf("%.1f%% of flows", 100*rep.TopShare))
	t.AddRow("top 5 clusters", fmt.Sprintf("%.1f%% of flows", 100*rep.Top5Share))
	t.Render(os.Stdout)
	fmt.Println()

	// K-means over the most common flow length, as an independent view of
	// the same concentration.
	bestLen, bestCount := 0, 0
	for n, vs := range byLen {
		if len(vs) > bestCount {
			bestLen, bestCount = n, len(vs)
		}
	}
	vs := byLen[bestLen]
	res := cluster.KMeans(vs, 4, stats.NewRNG(1), 100)
	kt := &stats.Table{
		Title:   fmt.Sprintf("k-means (k=4) over %d-packet flows (%d vectors)", bestLen, len(vs)),
		Headers: []string{"cluster", "size", "share"},
	}
	for i, sz := range res.Sizes {
		kt.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%d", sz),
			fmt.Sprintf("%.1f%%", 100*float64(sz)/float64(len(vs))))
	}
	kt.Render(os.Stdout)
	fmt.Printf("\nk-means inertia: %.1f after %d iterations\n", res.Inertia, res.Iterations)
}
