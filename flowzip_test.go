package flowzip_test

import (
	"bytes"
	"testing"
	"time"

	"flowzip"
)

func TestFacadeEndToEnd(t *testing.T) {
	cfg := flowzip.DefaultWebConfig()
	cfg.Flows = 500
	cfg.Duration = 10 * time.Second
	tr := flowzip.GenerateWeb(cfg)
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}

	arch, err := flowzip.Compress(tr, flowzip.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := arch.Ratio()
	if err != nil {
		t.Fatal(err)
	}
	if ratio <= 0 || ratio > 0.15 {
		t.Fatalf("ratio = %v", ratio)
	}

	var buf bytes.Buffer
	if _, err := arch.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := flowzip.DecodeArchive(&buf)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := flowzip.Decompress(back)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != tr.Len() {
		t.Fatalf("decompressed %d packets, want %d", dec.Len(), tr.Len())
	}
}

func TestFacadeStreamingCompressor(t *testing.T) {
	cfg := flowzip.DefaultWebConfig()
	cfg.Flows = 100
	cfg.Duration = 5 * time.Second
	tr := flowzip.GenerateWeb(cfg)

	c, err := flowzip.NewCompressor(flowzip.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Packets {
		c.Add(&tr.Packets[i])
	}
	arch := c.Finish()
	if arch.Packets() != tr.Len() {
		t.Fatalf("archive packets = %d", arch.Packets())
	}
	if c.Stats().Flows == 0 {
		t.Fatal("no flows counted")
	}
}

func TestFacadeBaselines(t *testing.T) {
	cfg := flowzip.DefaultWebConfig()
	cfg.Flows = 300
	cfg.Duration = 10 * time.Second
	tr := flowzip.GenerateWeb(cfg)

	methods := flowzip.Baselines()
	if len(methods) != 5 {
		t.Fatalf("baselines = %d", len(methods))
	}
	prev := 2.0
	for _, m := range methods {
		r, err := flowzip.BaselineRatio(m, tr)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if r >= prev {
			t.Fatalf("%s ratio %v not below previous %v", m.Name(), r, prev)
		}
		prev = r
	}
}

func TestFacadeGenerators(t *testing.T) {
	f := flowzip.GenerateFractal(flowzip.DefaultFractalConfig())
	if f.Len() == 0 {
		t.Fatal("fractal empty")
	}
	cfg := flowzip.DefaultWebConfig()
	cfg.Flows = 50
	tr := flowzip.GenerateWeb(cfg)
	r := flowzip.RandomizeAddresses(tr, 1)
	if r.Len() != tr.Len() {
		t.Fatal("randomize changed length")
	}
	if flowzip.NewTrace("x").Len() != 0 {
		t.Fatal("new trace not empty")
	}
}

func TestFacadeTraceIO(t *testing.T) {
	cfg := flowzip.DefaultWebConfig()
	cfg.Flows = 50
	cfg.Duration = 2 * time.Second
	tr := flowzip.GenerateWeb(cfg)
	path := t.TempDir() + "/t.tsh"
	if err := tr.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := flowzip.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatal("round trip length mismatch")
	}
}
