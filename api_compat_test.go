package flowzip_test

import (
	"bytes"
	"testing"
	"time"

	"flowzip"
)

// TestLegacyEntryPointsCompatible pins the pre-Pipeline public surface: every
// historical Compress* entry point must keep compiling with its original
// signature and produce bytes identical to the unified Pipeline. A failure
// here means the API redesign broke source compatibility.
func TestLegacyEntryPointsCompatible(t *testing.T) {
	cfg := flowzip.DefaultWebConfig()
	cfg.Seed = 71
	cfg.Flows = 120
	cfg.Duration = 3 * time.Second
	tr := flowzip.GenerateWeb(cfg)
	opts := flowzip.DefaultOptions()

	encode := func(a *flowzip.Archive, err error) []byte {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := a.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	want := encode(flowzip.Compress(tr, opts))

	// The unified entry point.
	p, err := flowzip.New(opts, flowzip.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := encode(p.CompressTrace(tr)); !bytes.Equal(got, want) {
		t.Error("Pipeline.CompressTrace diverges from serial Compress")
	}
	if got := encode(p.Compress(flowzip.TraceSource(tr, 0))); !bytes.Equal(got, want) {
		t.Error("Pipeline.Compress diverges from serial Compress")
	}

	// Every legacy wrapper, with its original signature.
	if got := encode(flowzip.CompressParallel(tr, opts, 3)); !bytes.Equal(got, want) {
		t.Error("CompressParallel diverges")
	}
	var stats flowzip.ParallelStats
	if got := encode(flowzip.CompressParallelConfig(tr, opts,
		flowzip.ParallelConfig{Workers: 3, SharedTemplates: true, Stats: &stats})); !bytes.Equal(got, want) {
		t.Error("CompressParallelConfig diverges")
	}
	if stats.Workers != 3 {
		t.Errorf("ParallelStats.Workers = %d, want 3", stats.Workers)
	}
	if got := encode(flowzip.CompressStream(flowzip.TraceSource(tr, 0), opts, 3)); !bytes.Equal(got, want) {
		t.Error("CompressStream diverges")
	}
	if got := encode(flowzip.CompressStreamConfig(flowzip.TraceSource(tr, 0), opts,
		flowzip.StreamConfig{Workers: 3, MaxResident: 4096})); !bytes.Equal(got, want) {
		t.Error("CompressStreamConfig diverges")
	}
}
