package flowzip_test

import (
	"bytes"
	"fmt"
	"time"

	"flowzip"
)

// ExampleReader opens an indexed archive through the seekable read path and
// decodes it in parallel without ever holding the whole container in an
// Archive value.
func ExampleReader() {
	cfg := flowzip.DefaultWebConfig()
	cfg.Seed = 11
	cfg.Flows = 200
	cfg.Duration = 2 * time.Second
	tr := flowzip.GenerateWeb(cfg)

	archive, _ := flowzip.Compress(tr, flowzip.DefaultOptions())
	archive.Index = flowzip.IndexConfig{Enabled: true}
	var buf bytes.Buffer
	archive.Encode(&buf)

	r, err := flowzip.OpenArchive(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer r.Close()

	back, err := r.DecompressParallel(4)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	is := r.IndexStats()
	fmt.Println("flows:", r.Flows())
	fmt.Println("groups:", is.Groups)
	fmt.Println("packets preserved:", back.Len() == tr.Len())
	// Output:
	// flows: 200
	// groups: 1
	// packets preserved: true
}

// ExampleExtractFlows decodes only the flows of one server address from an
// indexed archive, reading a fraction of the container.
func ExampleExtractFlows() {
	cfg := flowzip.DefaultWebConfig()
	cfg.Seed = 12
	cfg.Flows = 2000
	cfg.Duration = 10 * time.Second
	tr := flowzip.GenerateWeb(cfg)

	archive, _ := flowzip.Compress(tr, flowzip.DefaultOptions())
	archive.Index = flowzip.IndexConfig{Enabled: true, GroupSize: 64}
	var buf bytes.Buffer
	archive.Encode(&buf)

	server := archive.Addresses[0]
	sub, err := flowzip.ExtractFlows(bytes.NewReader(buf.Bytes()), int64(buf.Len()), flowzip.FlowFilter{
		Prefix:    server,
		PrefixLen: 32,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("selective decode packets:", sub.Len())
	fmt.Println("subset of full trace:", sub.Len() < tr.Len())
	// Output:
	// selective decode packets: 8
	// subset of full trace: true
}
