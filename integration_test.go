package flowzip_test

import (
	"path/filepath"
	"testing"
	"time"

	"flowzip"
	"flowzip/internal/flow"
)

// The integration suite exercises complete user journeys through the public
// API — the scenarios the examples/ directory demonstrates, asserted.

func TestIntegrationFileBasedPipeline(t *testing.T) {
	dir := t.TempDir()

	// 1. Generate and persist a trace.
	cfg := flowzip.DefaultWebConfig()
	cfg.Seed = 101
	cfg.Flows = 800
	cfg.Duration = 10 * time.Second
	tr := flowzip.GenerateWeb(cfg)
	tracePath := filepath.Join(dir, "web.tsh")
	if err := tr.SaveFile(tracePath); err != nil {
		t.Fatal(err)
	}

	// 2. Reload and compress.
	loaded, err := flowzip.LoadTrace(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	arch, err := flowzip.Compress(loaded, flowzip.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	// 3. Persist as the paper's four datasets and reload.
	dsDir := filepath.Join(dir, "datasets")
	if err := arch.SaveDatasets(dsDir); err != nil {
		t.Fatal(err)
	}
	arch2, err := flowzip.LoadDatasets(dsDir)
	if err != nil {
		t.Fatal(err)
	}

	// 4. Decompress and persist as pcap.
	dec, err := flowzip.Decompress(arch2)
	if err != nil {
		t.Fatal(err)
	}
	pcapPath := filepath.Join(dir, "decomp.pcap")
	if err := dec.SaveFile(pcapPath); err != nil {
		t.Fatal(err)
	}
	back, err := flowzip.LoadTrace(pcapPath)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("pipeline lost packets: %d -> %d", tr.Len(), back.Len())
	}
}

func TestIntegrationStatisticalInvariants(t *testing.T) {
	cfg := flowzip.DefaultWebConfig()
	cfg.Seed = 102
	cfg.Flows = 2000
	cfg.Duration = 15 * time.Second
	tr := flowzip.GenerateWeb(cfg)
	arch, err := flowzip.Compress(tr, flowzip.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := flowzip.Decompress(arch)
	if err != nil {
		t.Fatal(err)
	}

	origFlows := flow.Assemble(tr.Packets)
	decFlows := flow.Assemble(dec.Packets)
	origDist := flow.MeasureLengths(origFlows)
	decDist := flow.MeasureLengths(decFlows)

	// Flow-length distribution is preserved exactly (templates keep n).
	for _, n := range origDist.Lengths() {
		if origDist.Counts[n] != decDist.Counts[n] {
			t.Fatalf("length %d: %d flows became %d", n, origDist.Counts[n], decDist.Counts[n])
		}
	}

	// First-packet timestamps are preserved (µs resolution).
	for i, f := range origFlows {
		if i >= len(decFlows) {
			break
		}
		d := f.FirstTimestamp() - decFlows[i].FirstTimestamp()
		if d < -time.Millisecond || d > time.Millisecond {
			t.Fatalf("flow %d start drift %v", i, d)
		}
	}

	// Per-flow server addresses preserved as a set.
	origServers := map[uint32]bool{}
	for _, f := range origFlows {
		origServers[uint32(f.ServerIP)] = true
	}
	for _, f := range decFlows {
		// Decompressed flows' server side is the endpoint with port 80.
		if f.ServerPort == 80 && !origServers[uint32(f.ServerIP)] {
			t.Fatalf("decompressed server %v not in original set", f.ServerIP)
		}
	}
}

func TestIntegrationP2PPipeline(t *testing.T) {
	cfg := flowzip.DefaultP2PConfig()
	cfg.Seed = 103
	cfg.Flows = 800
	cfg.Duration = 10 * time.Second
	tr := flowzip.GenerateP2P(cfg)

	arch, err := flowzip.Compress(tr, flowzip.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := arch.Ratio()
	if err != nil {
		t.Fatal(err)
	}
	// The method still compresses P2P traffic strongly (future-work claim).
	if ratio > 0.15 {
		t.Fatalf("p2p ratio = %v", ratio)
	}
	dec, err := flowzip.Decompress(arch)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != tr.Len() {
		t.Fatalf("p2p packets %d -> %d", tr.Len(), dec.Len())
	}
}

func TestIntegrationSynthesisChain(t *testing.T) {
	// model -> synthesize -> compress -> synthesize again: the template
	// library must stay closed under this loop.
	cfg := flowzip.DefaultWebConfig()
	cfg.Seed = 104
	cfg.Flows = 500
	cfg.Duration = 8 * time.Second
	tr := flowzip.GenerateWeb(cfg)
	a1, err := flowzip.Compress(tr, flowzip.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s1, err := flowzip.Synthesize(a1, flowzip.SynthConfig{Seed: 1, Flows: 1000, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := flowzip.Compress(s1, flowzip.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(a2.ShortTemplates) > len(a1.ShortTemplates) {
		t.Fatalf("template library grew: %d -> %d", len(a1.ShortTemplates), len(a2.ShortTemplates))
	}
	s2, err := flowzip.Synthesize(a2, flowzip.SynthConfig{Seed: 2, Flows: 500, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() == 0 {
		t.Fatal("second-generation synthesis empty")
	}
}
