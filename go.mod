module flowzip

go 1.23
