package flowzip_test

import (
	"bytes"
	"fmt"
	"time"

	"flowzip"
)

// ExampleCompress demonstrates the basic compress/decompress cycle.
func ExampleCompress() {
	cfg := flowzip.DefaultWebConfig()
	cfg.Seed = 1
	cfg.Flows = 100
	cfg.Duration = 2 * time.Second
	tr := flowzip.GenerateWeb(cfg)

	archive, err := flowzip.Compress(tr, flowzip.DefaultOptions())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	back, err := flowzip.Decompress(archive)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("flows:", archive.Flows())
	fmt.Println("packets preserved:", back.Len() == tr.Len())
	// Output:
	// flows: 100
	// packets preserved: true
}

// ExampleArchive_Encode shows archive persistence through the binary
// container.
func ExampleArchive_Encode() {
	cfg := flowzip.DefaultWebConfig()
	cfg.Seed = 2
	cfg.Flows = 50
	cfg.Duration = time.Second
	tr := flowzip.GenerateWeb(cfg)
	archive, _ := flowzip.Compress(tr, flowzip.DefaultOptions())

	var buf bytes.Buffer
	if _, err := archive.Encode(&buf); err != nil {
		fmt.Println("error:", err)
		return
	}
	loaded, err := flowzip.DecodeArchive(&buf)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("round trip flows:", loaded.Flows() == archive.Flows())
	// Output:
	// round trip flows: true
}

// ExampleSynthesize generates new traffic from an archive's model.
func ExampleSynthesize() {
	cfg := flowzip.DefaultWebConfig()
	cfg.Seed = 3
	cfg.Flows = 200
	cfg.Duration = 5 * time.Second
	tr := flowzip.GenerateWeb(cfg)
	archive, _ := flowzip.Compress(tr, flowzip.DefaultOptions())

	synth, err := flowzip.Synthesize(archive, flowzip.SynthConfig{Seed: 1, Flows: 400, Scale: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("synthesized more packets:", synth.Len() > tr.Len())
	// Output:
	// synthesized more packets: true
}
