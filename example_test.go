package flowzip_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"flowzip"
)

// ExampleCompress demonstrates the basic compress/decompress cycle.
func ExampleCompress() {
	cfg := flowzip.DefaultWebConfig()
	cfg.Seed = 1
	cfg.Flows = 100
	cfg.Duration = 2 * time.Second
	tr := flowzip.GenerateWeb(cfg)

	archive, err := flowzip.Compress(tr, flowzip.DefaultOptions())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	back, err := flowzip.Decompress(archive)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("flows:", archive.Flows())
	fmt.Println("packets preserved:", back.Len() == tr.Len())
	// Output:
	// flows: 100
	// packets preserved: true
}

// ExampleArchive_Encode shows archive persistence through the binary
// container.
func ExampleArchive_Encode() {
	cfg := flowzip.DefaultWebConfig()
	cfg.Seed = 2
	cfg.Flows = 50
	cfg.Duration = time.Second
	tr := flowzip.GenerateWeb(cfg)
	archive, _ := flowzip.Compress(tr, flowzip.DefaultOptions())

	var buf bytes.Buffer
	if _, err := archive.Encode(&buf); err != nil {
		fmt.Println("error:", err)
		return
	}
	loaded, err := flowzip.DecodeArchive(&buf)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("round trip flows:", loaded.Flows() == archive.Flows())
	// Output:
	// round trip flows: true
}

// ExampleCompressStream compresses a packet stream without materializing
// it, and shows the archive is byte-identical to the in-memory path.
func ExampleCompressStream() {
	cfg := flowzip.DefaultWebConfig()
	cfg.Seed = 4
	cfg.Flows = 150
	cfg.Duration = 2 * time.Second

	// Any PacketSource works: here the bounded-memory Web generator.
	archive, err := flowzip.CompressStream(flowzip.StreamWeb(cfg, 256), flowzip.DefaultOptions(), 4)
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	serial, _ := flowzip.Compress(flowzip.GenerateWeb(cfg), flowzip.DefaultOptions())
	var sb, tb bytes.Buffer
	archive.Encode(&sb)
	serial.Encode(&tb)
	fmt.Println("flows:", archive.Flows())
	fmt.Println("identical to serial:", bytes.Equal(sb.Bytes(), tb.Bytes()))
	// Output:
	// flows: 150
	// identical to serial: true
}

// ExampleCompressDistributed runs the distributed pipeline — a loopback
// TCP coordinator plus workers — and shows the archive is byte-identical
// to the serial path.
func ExampleCompressDistributed() {
	cfg := flowzip.DefaultWebConfig()
	cfg.Seed = 6
	cfg.Flows = 120
	cfg.Duration = 2 * time.Second
	tr := flowzip.GenerateWeb(cfg)

	// Each worker pulls its own stream of the same packets; on real
	// deployments this is the capture file replicated to every machine.
	src := func() (flowzip.PacketSource, error) { return flowzip.TraceSource(tr, 0), nil }
	archive, err := flowzip.CompressDistributed(src, flowzip.DefaultOptions(), 4, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	serial, _ := flowzip.Compress(tr, flowzip.DefaultOptions())
	var db, sb bytes.Buffer
	archive.Encode(&db)
	serial.Encode(&sb)
	fmt.Println("flows:", archive.Flows())
	fmt.Println("identical to serial:", bytes.Equal(db.Bytes(), sb.Bytes()))
	// Output:
	// flows: 120
	// identical to serial: true
}

// ExampleOpenPcap streams a capture file through the compressor in bounded
// memory.
func ExampleOpenPcap() {
	dir, err := os.MkdirTemp("", "flowzip-example")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer os.RemoveAll(dir)

	cfg := flowzip.DefaultWebConfig()
	cfg.Seed = 6
	cfg.Flows = 80
	cfg.Duration = time.Second
	path := filepath.Join(dir, "web.pcap")
	if err := flowzip.GenerateWeb(cfg).SaveFile(path); err != nil {
		fmt.Println("error:", err)
		return
	}

	src, err := flowzip.OpenPcap(path)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer src.Close()
	archive, err := flowzip.CompressStream(src, flowzip.DefaultOptions(), 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("flows:", archive.Flows())
	// Output:
	// flows: 80
}

// ExampleSynthesize generates new traffic from an archive's model.
func ExampleSynthesize() {
	cfg := flowzip.DefaultWebConfig()
	cfg.Seed = 3
	cfg.Flows = 200
	cfg.Duration = 5 * time.Second
	tr := flowzip.GenerateWeb(cfg)
	archive, _ := flowzip.Compress(tr, flowzip.DefaultOptions())

	synth, err := flowzip.Synthesize(archive, flowzip.SynthConfig{Seed: 1, Flows: 400, Scale: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("synthesized more packets:", synth.Len() > tr.Len())
	// Output:
	// synthesized more packets: true
}

// ExampleNew shows the unified pipeline entry point: one validated
// configuration applied to any input shape, byte-identical to serial
// Compress.
func ExampleNew() {
	cfg := flowzip.DefaultWebConfig()
	cfg.Seed = 4
	cfg.Flows = 100
	cfg.Duration = 2 * time.Second
	tr := flowzip.GenerateWeb(cfg)

	p, err := flowzip.New(flowzip.DefaultOptions(), flowzip.Config{Workers: 4})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fromStream, err := p.Compress(flowzip.TraceSource(tr, 0))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	serial, _ := flowzip.Compress(tr, flowzip.DefaultOptions())
	var a, b bytes.Buffer
	fromStream.Encode(&a)
	serial.Encode(&b)
	fmt.Println("byte-identical to serial:", bytes.Equal(a.Bytes(), b.Bytes()))
	// Output:
	// byte-identical to serial: true
}

// ExampleNewDaemon runs an in-process flowzipd: one tenant streams a trace
// in, the daemon flushes it as that tenant's archive, and a graceful
// shutdown drains everything.
func ExampleNewDaemon() {
	dir, err := os.MkdirTemp("", "flowzipd")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer os.RemoveAll(dir)

	d, err := flowzip.NewDaemon(flowzip.DaemonConfig{Dir: dir, Workers: 2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	cfg := flowzip.DefaultWebConfig()
	cfg.Seed = 5
	cfg.Flows = 60
	cfg.Duration = 2 * time.Second
	tr := flowzip.GenerateWeb(cfg)

	sum, err := flowzip.Ingest(d.Addr().String(), "tenant-a",
		flowzip.TraceSource(tr, 0), flowzip.DefaultOptions(), flowzip.NetConfig{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := d.Shutdown(context.Background()); err != nil {
		fmt.Println("error:", err)
		return
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "tenant-a", "*.fz"))
	fmt.Println("packets ingested:", sum.Packets == int64(tr.Len()))
	fmt.Println("archives written:", len(segs))
	// Output:
	// packets ingested: true
	// archives written: 1
}
