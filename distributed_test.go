package flowzip_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"flowzip"
)

// TestPublicDistributedAPI exercises the distributed pipeline end to end
// through the public facade: shard files, header inspection, loopback TCP —
// all byte-identical to serial Compress.
func TestPublicDistributedAPI(t *testing.T) {
	cfg := flowzip.DefaultWebConfig()
	cfg.Flows = 300
	cfg.Seed = 8
	tr := flowzip.GenerateWeb(cfg)

	serial, err := flowzip.Compress(tr, flowzip.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if _, err := serial.Encode(&want); err != nil {
		t.Fatal(err)
	}

	// File transport: CompressShard + EncodeShardState + MergeShardFiles.
	const shards = 3
	dir := t.TempDir()
	paths := make([]string, shards)
	for i := 0; i < shards; i++ {
		r, err := flowzip.CompressShard(flowzip.TraceSource(tr, 0), flowzip.DefaultOptions(), i, shards)
		if err != nil {
			t.Fatal(err)
		}
		paths[i] = filepath.Join(dir, fmt.Sprintf("part%d.fzshard", i))
		f, err := os.Create(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := flowzip.EncodeShardState(f, r); err != nil {
			t.Fatal(err)
		}
		f.Close()

		rf, err := os.Open(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		h, err := flowzip.ReadShardHeader(rf)
		rf.Close()
		if err != nil {
			t.Fatal(err)
		}
		if h.Index != i || h.Count != shards {
			t.Fatalf("shard header %d/%d, want %d/%d", h.Index, h.Count, i, shards)
		}
	}
	merged, err := flowzip.MergeShardFiles(paths)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if _, err := merged.Encode(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Error("shard-file archive differs from serial")
	}

	// Network transport: loopback coordinator + workers.
	src := func() (flowzip.PacketSource, error) { return flowzip.TraceSource(tr, 0), nil }
	arch, err := flowzip.CompressDistributed(src, flowzip.DefaultOptions(), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	got.Reset()
	if _, err := arch.Encode(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Error("distributed archive differs from serial")
	}
}
